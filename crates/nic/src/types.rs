//! Types shared by the NIC models: queue-pair handles, work requests,
//! completions and configuration.

use core::fmt;

use qpip_netstack::types::Endpoint;
use qpip_sim::time::SimTime;

/// Handle to a queue pair inside one NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QpId(pub u32);

impl fmt::Display for QpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "qp#{}", self.0)
    }
}

/// Handle to a completion queue inside one NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CqId(pub u32);

impl fmt::Display for CqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cq#{}", self.0)
    }
}

/// Transport service bound to a QP (§3: best-effort datagrams over UDP,
/// reliable connections over TCP).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceType {
    /// Reliable, connected service over TCP.
    ReliableTcp,
    /// Unreliable datagram service over UDP.
    UnreliableUdp,
}

/// A send work request as fetched from the host send queue.
#[derive(Debug, Clone)]
pub struct SendWr {
    /// Caller-chosen identifier reported in the completion.
    pub wr_id: u64,
    /// Message bytes (the registered-buffer contents).
    pub payload: Vec<u8>,
    /// Destination for UDP QPs ("The WRs in a UDP QP identify the
    /// target … for sent … messages", §3). Ignored for connected TCP.
    pub dst: Option<Endpoint>,
}

/// An RDMA Write work request: place `data` at `offset` within the
/// peer's registered region `rkey` (the peer's process is not involved
/// and no receive WR is consumed — §2.1). Region keys travel out of
/// band, e.g. via an earlier send-receive exchange, exactly as §2.1
/// prescribes.
#[derive(Debug, Clone)]
pub struct RdmaWriteWr {
    /// Caller-chosen identifier reported in the completion.
    pub wr_id: u64,
    /// The bytes to place remotely.
    pub data: Vec<u8>,
    /// Remote region key.
    pub rkey: MrKey,
    /// Byte offset within the remote region.
    pub remote_offset: u64,
}

/// An RDMA Read work request: fetch `len` bytes at `offset` from the
/// peer's registered region.
#[derive(Debug, Clone, Copy)]
pub struct RdmaReadWr {
    /// Caller-chosen identifier reported in the completion.
    pub wr_id: u64,
    /// Bytes to read.
    pub len: u32,
    /// Remote region key.
    pub rkey: MrKey,
    /// Byte offset within the remote region.
    pub remote_offset: u64,
}

/// Key of a registered memory region (the rkey peers use to address it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MrKey(pub u32);

impl fmt::Display for MrKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mr#{}", self.0)
    }
}

/// A receive work request: identifies a registered buffer for incoming
/// data.
#[derive(Debug, Clone, Copy)]
pub struct RecvWr {
    /// Caller-chosen identifier reported in the completion.
    pub wr_id: u64,
    /// Capacity of the posted buffer in bytes.
    pub capacity: usize,
}

/// Completion status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompletionStatus {
    /// The operation finished.
    Success,
    /// The incoming message was larger than the posted buffer.
    LocalLengthError {
        /// Message size.
        len: usize,
        /// Buffer capacity.
        capacity: usize,
    },
    /// The connection was lost (reset or retry exhaustion).
    ConnectionError,
}

/// What completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompletionKind {
    /// A send WR finished (TCP: all bytes acknowledged, §3; UDP: handed
    /// to the wire).
    Send,
    /// A receive WR consumed an incoming message.
    Recv {
        /// The message bytes (placed in the posted buffer).
        data: Vec<u8>,
        /// Sender endpoint (meaningful for UDP QPs).
        src: Option<Endpoint>,
    },
    /// A connection request completed on this QP (client side), or an
    /// incoming connection was mated to this QP (server side, §3).
    ConnectionEstablished,
    /// The peer closed the connection.
    PeerDisconnected,
    /// An RDMA Write WR finished (all bytes acknowledged, placed in the
    /// remote region without involving the remote process — §2.1).
    RdmaWrite,
    /// An RDMA Read WR finished; the remote bytes are in the local
    /// registered buffer.
    RdmaRead {
        /// The bytes read from the remote region.
        data: Vec<u8>,
    },
}

/// A completion-queue entry, visible to the host at `visible_at`.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The QP the work belonged to.
    pub qp: QpId,
    /// The work-request id (0 for connection events).
    pub wr_id: u64,
    /// What completed.
    pub kind: CompletionKind,
    /// Status.
    pub status: CompletionStatus,
    /// When the entry lands in host memory (CQ DMA finished).
    pub visible_at: SimTime,
}

/// Where the IP checksum is computed on the QPIP NIC (§4.2.1: the
/// prototype's DMA hardware assists on transmit; receive-side assist is
/// emulated for the figures, with firmware checksumming reported
/// separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChecksumMode {
    /// DMA-engine checksums: no NIC processor cycles (the figures'
    /// configuration).
    Hardware,
    /// Firmware loop at ~5 cycles/byte (the 73 µs / 113 µs RTT and
    /// 26.4 MB/s configuration).
    Firmware,
}

/// QPIP NIC configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NicConfig {
    /// Checksum placement.
    pub checksum: ChecksumMode,
    /// `true` models a NIC processor with a hardware multiplier
    /// (ablation for §4.2.2's software-multiply penalty).
    pub hw_multiply: bool,
    /// Wire MTU of the attached fabric.
    pub mtu: usize,
    /// When set, the offloaded stack builds TCP segments up to this size
    /// regardless of the wire MTU — one QP message per segment (§4.1) —
    /// and the firmware carries oversized segments as IPv6 end-to-end
    /// fragments ("the IPv6 standard supports only end-to-end
    /// fragmentation which is better suited to hardware based protocol
    /// implementations", §4.1). `None` bounds segments by the wire MTU.
    pub jumbo_segments: Option<usize>,
    /// Negotiate ECN on TCP connections and react to
    /// Congestion-Experienced marks from the fabric's RED/ECN queues
    /// (§5.2). Off by default, like the era's stacks.
    pub ecn: bool,
    /// Enables the RDMA transaction class (§2.1) on this NIC's TCP QPs.
    /// Adds a 28-byte direct-data-placement frame to every message (our
    /// forward-port of what iWARP later standardized); both ends of a
    /// connection must enable it. Off by default — plain QPIP keeps the
    /// paper's unframed encapsulation.
    pub rdma_framing: bool,
}

impl NicConfig {
    /// The configuration used for the paper's figures: hardware-assisted
    /// checksum, LANai-like software multiply, 16 KB native MTU.
    pub fn paper_default() -> Self {
        NicConfig {
            checksum: ChecksumMode::Hardware,
            hw_multiply: false,
            mtu: qpip_sim::params::QPIP_NATIVE_MTU,
            jumbo_segments: None,
            ecn: false,
            rdma_framing: false,
        }
    }

    /// Same but with the firmware checksum (the "for completeness"
    /// numbers in §4.2.1).
    pub fn firmware_checksum() -> Self {
        NicConfig { checksum: ChecksumMode::Firmware, ..NicConfig::paper_default() }
    }

    /// Small-MTU fabric with jumbo (16 KB) TCP segments carried as IPv6
    /// fragments: one WR still maps to one segment, so the host's verb
    /// cost stays per-16 KB-message even at a 1500-byte wire MTU.
    pub fn fragmented(wire_mtu: usize) -> Self {
        NicConfig {
            mtu: wire_mtu,
            jumbo_segments: Some(qpip_sim::params::QPIP_NATIVE_MTU),
            ..NicConfig::paper_default()
        }
    }

    /// The TCP segment budget: `jumbo_segments` when set, otherwise the
    /// wire MTU.
    pub fn segment_mtu(&self) -> usize {
        self.jumbo_segments.unwrap_or(self.mtu).max(self.mtu)
    }

    /// Paper defaults plus the RDMA transaction class.
    pub fn with_rdma() -> Self {
        NicConfig { rdma_framing: true, ..NicConfig::paper_default() }
    }
}

/// Errors from NIC verb calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NicError {
    /// Unknown QP handle.
    UnknownQp(QpId),
    /// Unknown CQ handle.
    UnknownCq(CqId),
    /// Operation not valid for the QP's service type or state.
    InvalidState(&'static str),
    /// The underlying protocol engine rejected the call.
    Engine(qpip_netstack::engine::EngineError),
}

impl fmt::Display for NicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NicError::UnknownQp(q) => write!(f, "unknown {q}"),
            NicError::UnknownCq(c) => write!(f, "unknown {c}"),
            NicError::InvalidState(m) => write!(f, "invalid state: {m}"),
            NicError::Engine(e) => write!(f, "protocol engine: {e}"),
        }
    }
}

impl std::error::Error for NicError {}

impl From<qpip_netstack::engine::EngineError> for NicError {
    fn from(e: qpip_netstack::engine::EngineError) -> Self {
        NicError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_impls() {
        assert_eq!(QpId(3).to_string(), "qp#3");
        assert_eq!(CqId(7).to_string(), "cq#7");
        assert!(NicError::UnknownQp(QpId(1)).to_string().contains("qp#1"));
    }

    #[test]
    fn paper_default_matches_section_421() {
        let c = NicConfig::paper_default();
        assert_eq!(c.checksum, ChecksumMode::Hardware);
        assert!(!c.hw_multiply);
        assert_eq!(c.mtu, 16 * 1024);
        assert_eq!(NicConfig::firmware_checksum().checksum, ChecksumMode::Firmware);
    }
}
