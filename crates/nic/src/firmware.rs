//! The QPIP network-interface firmware.
//!
//! Implements the organization of Figures 1 and 2: a doorbell FSM fed by
//! host PIO writes, a management FSM for QP/CQ/connection commands, and
//! the transmit/receive FSMs that run the offloaded TCP/UDP/IPv6 engine
//! against the QP state table. Every stage charges cycles on the 133 MHz
//! NIC processor ([`qpip_sim::params`]), data crosses the 64-bit/33 MHz
//! PCI bus through a shared DMA pipe, and each stage execution is
//! recorded in the [`Occupancy`] table that regenerates Tables 2 and 3.

use std::collections::VecDeque;
use std::net::Ipv6Addr;

use qpip_netstack::engine::Engine;
use qpip_netstack::hash::FxHashMap;
use qpip_netstack::types::{ConnId, Emit, Endpoint, NetConfig, PacketKind, PacketOut, SendToken};
use qpip_sim::params;
use qpip_sim::resource::{BandwidthPipe, SerialResource};
use qpip_sim::time::{Clock, Cycles, SimDuration, SimTime};
use qpip_trace::{Snapshot, TraceEvent, Tracer};

use crate::occupancy::{Occupancy, PacketClass, Stage};
use crate::rdma::{RdmaFrame, RdmaOpcode};
use crate::types::{
    ChecksumMode, Completion, CompletionKind, CompletionStatus, CqId, MrKey, NicConfig, NicError,
    QpId, RdmaReadWr, RdmaWriteWr, RecvWr, SendWr, ServiceType,
};

/// Something the NIC hands back to the node simulation.
#[derive(Debug)]
pub enum NicOutput {
    /// Put these bytes on the fabric at instant `at`.
    Transmit {
        /// Handoff instant (media transmit engine start).
        at: SimTime,
        /// Destination IPv6 address (fabric resolves the route).
        dst: Ipv6Addr,
        /// Complete IPv6 packet (with transmit headroom in front).
        bytes: qpip_wire::Packet,
        /// Cost-model classification.
        kind: PacketKind,
    },
    /// A completion-queue entry became visible in host memory.
    Complete(CqId, Completion),
}

/// Aggregate NIC counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct NicStats {
    /// Packets handed to the fabric.
    pub tx_packets: u64,
    /// Packets received from the fabric.
    pub rx_packets: u64,
    /// UDP messages dropped because no receive WR was posted (§3:
    /// unreliable delivery consumes a WR; none posted means the datagram
    /// is gone).
    pub udp_no_wr_drops: u64,
    /// TCP messages parked in SRAM awaiting a receive WR.
    pub tcp_backlogged: u64,
    /// Receive completions flagged with a length error.
    pub length_errors: u64,
    /// RDMA Writes placed into local registered regions.
    pub rdma_writes: u64,
    /// RDMA Reads served from local registered regions.
    pub rdma_reads_served: u64,
    /// RDMA operations rejected for bad keys/bounds (each tears the
    /// connection down, as Infiniband protection errors do).
    pub rdma_protection_errors: u64,
}

impl NicStats {
    /// Renders the counters as a named snapshot (scope `"nic"`).
    pub fn snapshot(&self) -> Snapshot {
        let mut s = Snapshot::new("nic");
        s.push("tx_packets", self.tx_packets)
            .push("rx_packets", self.rx_packets)
            .push("udp_no_wr_drops", self.udp_no_wr_drops)
            .push("tcp_backlogged", self.tcp_backlogged)
            .push("length_errors", self.length_errors)
            .push("rdma_writes", self.rdma_writes)
            .push("rdma_reads_served", self.rdma_reads_served)
            .push("rdma_protection_errors", self.rdma_protection_errors);
        s
    }
}

#[derive(Debug)]
struct Qp {
    service: ServiceType,
    send_cq: CqId,
    recv_cq: CqId,
    conn: Option<ConnId>,
    local_port: Option<u16>,
    recv_queue: VecDeque<RecvWr>,
    posted_bytes: u64,
    /// In-order TCP messages waiting for the host to post a receive WR.
    backlog: VecDeque<(Vec<u8>, Option<Endpoint>)>,
    established: bool,
}

impl Qp {
    fn new(service: ServiceType, send_cq: CqId, recv_cq: CqId) -> Qp {
        Qp {
            service,
            send_cq,
            recv_cq,
            conn: None,
            local_port: None,
            recv_queue: VecDeque::new(),
            posted_bytes: 0,
            backlog: VecDeque::new(),
            established: false,
        }
    }
}

/// What a netstack send token stands for, so ACK-driven completions
/// dispatch to the right CQ entry kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TokenUse {
    /// A send-receive WR: completes as [`CompletionKind::Send`].
    Send(QpId, u64),
    /// An RDMA Write WR: completes as [`CompletionKind::RdmaWrite`].
    RdmaWrite(QpId, u64),
    /// Firmware-internal traffic (read requests/responses): no CQ entry.
    Internal,
}

/// How much preamble work precedes a packet transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxOrigin {
    /// Host-posted WR: doorbell + schedule + WR fetch already charged.
    PostedWr,
    /// Generated inside the receive path (ACKs, control): doorbell
    /// notification + scheduler pass are charged here (Table 2's ACK
    /// column includes them).
    Internal,
    /// Data pushed by the scheduler later (window opened, retransmit):
    /// scheduler pass + timer scan.
    Deferred,
}

/// The QPIP intelligent NIC: LANai-9-class processor + DMA + the
/// offloaded protocol engine.
#[derive(Debug)]
pub struct QpipNic {
    cfg: NicConfig,
    clock: Clock,
    proc: SerialResource,
    /// Transmit-side data fetch (device reads of host memory).
    dma_read: BandwidthPipe,
    /// Receive-side data placement (device writes to host memory).
    dma_write: BandwidthPipe,
    engine: Engine,
    qps: FxHashMap<QpId, Qp>,
    cq_count: u32,
    qp_count: u32,
    conn_to_qp: FxHashMap<ConnId, QpId>,
    udp_port_to_qp: FxHashMap<u16, QpId>,
    /// Idle QPs awaiting an incoming connection, per listening port (§3:
    /// an incoming connection "mates … to an idle QP").
    accept_pool: FxHashMap<u16, VecDeque<QpId>>,
    next_token: u64,
    tokens: FxHashMap<u64, TokenUse>,
    /// Registered memory regions addressable by peers (rkey → bytes).
    mrs: FxHashMap<u32, Vec<u8>>,
    next_rkey: u32,
    /// Outstanding RDMA Read requests, by echoed context.
    pending_reads: FxHashMap<u64, (QpId, u64)>,
    next_read_ctx: u64,
    occupancy: Occupancy,
    stats: NicStats,
    mul_cycles: u64,
    reassembler: qpip_netstack::frag::Reassembler,
    next_frag_id: u32,
    /// Flight-recorder handle; also installed into the embedded engine.
    tracer: Option<Tracer>,
}

impl QpipNic {
    /// Creates a NIC with the given configuration at IPv6 `addr`.
    pub fn new(cfg: NicConfig, addr: Ipv6Addr) -> Self {
        let mut net = NetConfig::qpip(cfg.segment_mtu());
        // QPIP semantics: the advertised window is the posted receive-WR
        // space (§5.1), which starts at zero.
        net.recv_buffer = 0;
        // The firmware's BSD-derived TCP acknowledges every second
        // segment (standard delayed ACK with a SAN-scale timeout); in
        // request-response traffic the ACK piggybacks on the echo. This
        // is what Tables 2/3's stage sums imply for the 1500-byte-MTU
        // throughput of Figure 4.
        net.ack_policy = qpip_netstack::types::AckPolicy::Delayed(SimDuration::from_micros(300));
        net.ecn = cfg.ecn;
        let mul_cycles =
            if cfg.hw_multiply { params::NIC_HW_MUL_CYCLES } else { params::NIC_SOFT_MUL_CYCLES };
        QpipNic {
            cfg,
            clock: params::nic_clock(),
            proc: SerialResource::new("nic-proc"),
            dma_read: BandwidthPipe::new("pci-dma-rd", params::PCI_DMA_READ_BYTES_PER_SEC),
            dma_write: BandwidthPipe::new("pci-dma-wr", params::PCI_DMA_WRITE_BYTES_PER_SEC),
            engine: Engine::new(net, addr),
            qps: FxHashMap::default(),
            cq_count: 0,
            qp_count: 0,
            conn_to_qp: FxHashMap::default(),
            udp_port_to_qp: FxHashMap::default(),
            accept_pool: FxHashMap::default(),
            next_token: 1,
            tokens: FxHashMap::default(),
            mrs: FxHashMap::default(),
            next_rkey: 1,
            pending_reads: FxHashMap::default(),
            next_read_ctx: 1,
            occupancy: Occupancy::new(),
            stats: NicStats::default(),
            mul_cycles,
            reassembler: qpip_netstack::frag::Reassembler::new(),
            next_frag_id: 0,
            tracer: None,
        }
    }

    /// Installs a flight-recorder handle on the firmware and its
    /// embedded protocol engine. Firmware FSM stage executions are
    /// recorded node-scoped; engine events carry their connection.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.engine.set_tracer(tracer.clone());
        self.tracer = Some(tracer);
    }

    /// This NIC's IPv6 address.
    pub fn addr(&self) -> Ipv6Addr {
        self.engine.local_addr()
    }

    /// The configuration.
    pub fn config(&self) -> &NicConfig {
        &self.cfg
    }

    /// Counters.
    pub fn stats(&self) -> NicStats {
        self.stats
    }

    /// The per-stage occupancy table (Tables 2 & 3).
    pub fn occupancy(&self) -> &Occupancy {
        &self.occupancy
    }

    /// Clears occupancy samples (between benchmark phases).
    pub fn reset_occupancy(&mut self) {
        self.occupancy.reset();
    }

    /// Total NIC-processor busy time so far.
    pub fn processor_busy(&self) -> SimDuration {
        self.proc.busy_time()
    }

    /// NIC-processor utilization over `[0, horizon]`.
    pub fn processor_utilization(&self, horizon: SimTime) -> f64 {
        self.proc.utilization(horizon)
    }

    /// Direct access to protocol-engine statistics.
    pub fn engine_stats(&self) -> qpip_netstack::engine::EngineStats {
        self.engine.stats()
    }

    /// Runs the embedded engine's TCB invariant oracle (full sweep; see
    /// [`qpip_netstack::invariant`]).
    ///
    /// # Errors
    ///
    /// The first violation found.
    pub fn check_invariants(&mut self) -> Result<(), qpip_netstack::invariant::InvariantViolation> {
        self.engine.check_invariants()
    }

    /// Takes a violation latched by the engine's per-event debug hook —
    /// the O(1) probe the DES world polls after every event.
    pub fn take_invariant_violation(
        &mut self,
    ) -> Option<qpip_netstack::invariant::InvariantViolation> {
        self.engine.take_invariant_violation()
    }

    /// TCP retransmissions performed by the offloaded stack.
    pub fn retransmissions(&self) -> u64 {
        self.engine.retransmissions()
    }

    /// ECN-triggered window reductions performed by the offloaded stack.
    pub fn ecn_reductions(&self) -> u64 {
        self.engine.ecn_reductions()
    }

    /// Multi-line description of everything still in flight on this
    /// NIC — per-QP WR/backlog state, outstanding send tokens and live
    /// engine connections — for deadlock diagnostics ([`crate::QpipNic`]
    /// has no view of host-side CQ contents; the caller appends those).
    pub fn pending_summary(&self) -> String {
        use core::fmt::Write as _;
        let mut s = String::new();
        let mut qps: Vec<_> = self.qps.iter().collect();
        qps.sort_by_key(|(id, _)| id.0);
        for (id, qp) in qps {
            let conn = match qp.conn {
                Some(c) => format!("{c}"),
                None => "-".into(),
            };
            let _ = writeln!(
                s,
                "    {id}: {:?} conn={conn} established={} recv_wrs={} posted_bytes={} \
                 backlog={} port={:?}",
                qp.service,
                qp.established,
                qp.recv_queue.len(),
                qp.posted_bytes,
                qp.backlog.len(),
                qp.local_port,
            );
        }
        if s.is_empty() {
            s.push_str("    (no QPs)\n");
        }
        let _ = writeln!(
            s,
            "    send tokens outstanding: {}, engine connections: {}, retransmissions: {}",
            self.tokens.len(),
            self.engine.conn_count(),
            self.engine.retransmissions(),
        );
        s
    }

    // ----- management FSM ------------------------------------------------

    /// Creates a completion queue.
    pub fn create_cq(&mut self) -> CqId {
        self.cq_count += 1;
        CqId(self.cq_count)
    }

    /// Creates a queue pair bound to send/receive CQs.
    ///
    /// # Errors
    ///
    /// [`NicError::UnknownCq`] if either CQ does not exist.
    pub fn create_qp(
        &mut self,
        service: ServiceType,
        send_cq: CqId,
        recv_cq: CqId,
    ) -> Result<QpId, NicError> {
        for cq in [send_cq, recv_cq] {
            if cq.0 == 0 || cq.0 > self.cq_count {
                return Err(NicError::UnknownCq(cq));
            }
        }
        self.qp_count += 1;
        let id = QpId(self.qp_count);
        self.qps.insert(id, Qp::new(service, send_cq, recv_cq));
        Ok(id)
    }

    /// Binds a UDP QP to a local port.
    ///
    /// # Errors
    ///
    /// [`NicError::UnknownQp`], [`NicError::InvalidState`] for TCP QPs,
    /// or an engine error if the port is taken.
    pub fn udp_bind(&mut self, qp: QpId, port: u16) -> Result<(), NicError> {
        let q = self.qps.get_mut(&qp).ok_or(NicError::UnknownQp(qp))?;
        if q.service != ServiceType::UnreliableUdp {
            return Err(NicError::InvalidState("udp_bind on a TCP QP"));
        }
        self.engine.udp_bind(port)?;
        q.local_port = Some(port);
        self.udp_port_to_qp.insert(port, qp);
        Ok(())
    }

    /// Starts monitoring a TCP port and queues `qp` to be mated to the
    /// next incoming connection (§3).
    ///
    /// # Errors
    ///
    /// [`NicError::UnknownQp`] / [`NicError::InvalidState`] as above.
    pub fn tcp_listen(&mut self, port: u16, qp: QpId) -> Result<(), NicError> {
        let q = self.qps.get(&qp).ok_or(NicError::UnknownQp(qp))?;
        if q.service != ServiceType::ReliableTcp {
            return Err(NicError::InvalidState("tcp_listen on a UDP QP"));
        }
        match self.engine.tcp_listen(port) {
            Ok(()) => {}
            Err(qpip_netstack::engine::EngineError::PortInUse(_)) => {
                // more QPs joining an existing accept pool
            }
            Err(e) => return Err(NicError::Engine(e)),
        }
        self.accept_pool.entry(port).or_default().push_back(qp);
        Ok(())
    }

    /// Initiates a connection from `qp` (client side of the rendezvous).
    ///
    /// # Errors
    ///
    /// [`NicError::UnknownQp`] / [`NicError::InvalidState`].
    pub fn tcp_connect(
        &mut self,
        now: SimTime,
        qp: QpId,
        local_port: u16,
        remote: Endpoint,
    ) -> Result<Vec<NicOutput>, NicError> {
        let q = self.qps.get(&qp).ok_or(NicError::UnknownQp(qp))?;
        if q.service != ServiceType::ReliableTcp || q.conn.is_some() {
            return Err(NicError::InvalidState("connect on a bound or UDP QP"));
        }
        let posted = q.posted_bytes;
        let t = self.charge(
            now,
            Stage::DoorbellProcess,
            PacketClass::Control,
            Cycles(params::NIC_STAGE_DOORBELL_CYCLES),
        );
        let (conn, emits) = self.engine.tcp_connect(t, local_port, remote);
        self.qps.get_mut(&qp).expect("checked").conn = Some(conn);
        self.conn_to_qp.insert(conn, qp);
        // QPIP window semantics: advertise exactly the posted space
        let upd = self.engine.set_recv_space(t, conn, posted).unwrap_or_default();
        let mut outputs = Vec::new();
        self.process_emits(t, emits, &mut outputs);
        self.process_emits(t, upd, &mut outputs);
        Ok(outputs)
    }

    // ----- doorbell + transmit FSMs ---------------------------------------

    /// Host rang the send doorbell for `qp` with one work request. The
    /// WR is fetched from host memory by DMA and processed (Figure 2's
    /// transmit FSM). `now` is when the doorbell write lands on the NIC.
    ///
    /// # Errors
    ///
    /// [`NicError::UnknownQp`], [`NicError::InvalidState`] for QPs
    /// without a bound port/connection, or engine errors (e.g. message
    /// larger than one segment).
    pub fn post_send(
        &mut self,
        now: SimTime,
        qp: QpId,
        wr: SendWr,
    ) -> Result<Vec<NicOutput>, NicError> {
        let q = self.qps.get(&qp).ok_or(NicError::UnknownQp(qp))?;
        let (service, local_port, conn, send_cq) = (q.service, q.local_port, q.conn, q.send_cq);
        let class = match service {
            ServiceType::ReliableTcp => PacketClass::DataSend,
            ServiceType::UnreliableUdp => PacketClass::UdpSend,
        };
        // Doorbell FSM + scheduler + WR fetch (Table 2 rows 1–3)
        let t = self.charge(
            now,
            Stage::DoorbellProcess,
            class,
            Cycles(params::NIC_STAGE_DOORBELL_CYCLES),
        );
        let t = self.charge(t, Stage::Schedule, class, Cycles(params::NIC_STAGE_SCHEDULE_CYCLES));
        let t = self.charge(t, Stage::GetWr, class, Cycles(params::NIC_STAGE_GET_WR_CYCLES));

        let mut outputs = Vec::new();
        match service {
            ServiceType::UnreliableUdp => {
                let Some(port) = local_port else {
                    return Err(NicError::InvalidState("send on unbound UDP QP"));
                };
                let Some(dst) = wr.dst else {
                    return Err(NicError::InvalidState("UDP send WR without destination"));
                };
                let emit = self.engine.udp_send(port, dst, &wr.payload)?;
                let _ = self.engine.take_ops();
                let Emit::Packet(pkt) = emit else { unreachable!("udp_send emits a packet") };
                let done = self.emit_one(t, pkt, TxOrigin::PostedWr, &mut outputs);
                // UDP send WRs complete as soon as the message is sent (§3)
                outputs.push(NicOutput::Complete(
                    send_cq,
                    Completion {
                        qp,
                        wr_id: wr.wr_id,
                        kind: CompletionKind::Send,
                        status: CompletionStatus::Success,
                        visible_at: done,
                    },
                ));
            }
            ServiceType::ReliableTcp => {
                let Some(conn) = conn else {
                    return Err(NicError::InvalidState("send on unconnected TCP QP"));
                };
                let token = self.next_token;
                self.next_token += 1;
                self.tokens.insert(token, TokenUse::Send(qp, wr.wr_id));
                let payload = if self.cfg.rdma_framing {
                    let mut msg = RdmaFrame::send(wr.payload.len() as u32).encode();
                    msg.extend_from_slice(&wr.payload);
                    msg
                } else {
                    wr.payload
                };
                let emits = match self.engine.tcp_send(t, conn, payload, SendToken(token)) {
                    Ok(e) => e,
                    Err(e) => {
                        self.tokens.remove(&token);
                        return Err(e.into());
                    }
                };
                let ops = self.engine.take_ops();
                let t = self.charge_muls(t, ops.muls, PacketClass::DataSend);
                self.process_emits_from(t, emits, TxOrigin::PostedWr, &mut outputs);
            }
        }
        Ok(outputs)
    }

    /// Host rang the receive doorbell for `qp` with one receive WR.
    ///
    /// Posting receive space grows the advertised TCP window (§5.1); a
    /// window update is transmitted when the window had collapsed below
    /// one full message.
    ///
    /// # Errors
    ///
    /// [`NicError::UnknownQp`].
    pub fn post_recv(
        &mut self,
        now: SimTime,
        qp: QpId,
        wr: RecvWr,
    ) -> Result<Vec<NicOutput>, NicError> {
        let q = self.qps.get_mut(&qp).ok_or(NicError::UnknownQp(qp))?;
        let was_small = q.posted_bytes < self.cfg.mtu as u64;
        q.recv_queue.push_back(wr);
        q.posted_bytes += wr.capacity as u64;
        let conn = q.conn;
        let established = q.established;
        let t = self.charge(
            now,
            Stage::DoorbellProcess,
            PacketClass::DataRecv,
            Cycles(params::NIC_STAGE_DOORBELL_CYCLES),
        );

        let mut outputs = Vec::new();
        // drain any backlog now that a buffer exists
        self.drain_backlog(t, qp, &mut outputs);
        if let Some(conn) = conn {
            // read the posted space AFTER the drain: a backlogged message
            // may have consumed the WR just posted, and the advertised
            // window must equal the space actually available (§5.1)
            let posted = self.qps[&qp].posted_bytes;
            let emits = self.engine.set_recv_space(t, conn, posted).unwrap_or_default();
            let _ = self.engine.take_ops();
            if was_small && established {
                self.process_emits(t, emits, &mut outputs);
            }
            // otherwise: the window rides on normal ACKs; suppress the
            // extra update packet
        }
        Ok(outputs)
    }

    // ----- RDMA transaction class (§2.1, extension) -----------------------

    /// Registers `len` bytes of host memory for remote access, returning
    /// the key peers use to address it. The region starts zeroed.
    pub fn register_mr(&mut self, len: usize) -> MrKey {
        let key = MrKey(self.next_rkey);
        self.next_rkey += 1;
        self.mrs.insert(key.0, vec![0; len]);
        key
    }

    /// Host-side access: writes into a local registered region (the
    /// application initializing its own memory — no NIC involvement).
    ///
    /// # Panics
    ///
    /// Panics on unknown keys or out-of-bounds ranges: local accesses
    /// are program errors, unlike remote ones which are protocol errors.
    pub fn mr_write(&mut self, key: MrKey, offset: usize, data: &[u8]) {
        let region = self.mrs.get_mut(&key.0).expect("unknown memory region");
        region[offset..offset + data.len()].copy_from_slice(data);
    }

    /// Host-side access: reads from a local registered region.
    ///
    /// # Panics
    ///
    /// Panics on unknown keys or out-of-bounds ranges.
    pub fn mr_read(&self, key: MrKey, offset: usize, len: usize) -> Vec<u8> {
        let region = self.mrs.get(&key.0).expect("unknown memory region");
        region[offset..offset + len].to_vec()
    }

    /// Posts an RDMA Write: `data` is placed at the peer's registered
    /// region without consuming a receive WR or involving the peer's
    /// process (§2.1). Completes as [`CompletionKind::RdmaWrite`] when
    /// every byte is acknowledged.
    ///
    /// # Errors
    ///
    /// [`NicError::InvalidState`] unless this NIC has `rdma_framing` and
    /// the QP is a connected TCP QP; engine errors for oversized data.
    pub fn post_rdma_write(
        &mut self,
        now: SimTime,
        qp: QpId,
        wr: RdmaWriteWr,
    ) -> Result<Vec<NicOutput>, NicError> {
        let conn = self.rdma_conn(qp)?;
        let t = self.tx_wr_preamble(now);
        let token = self.next_token;
        self.next_token += 1;
        self.tokens.insert(token, TokenUse::RdmaWrite(qp, wr.wr_id));
        let mut msg = RdmaFrame {
            opcode: RdmaOpcode::Write,
            rkey: wr.rkey.0,
            offset: wr.remote_offset,
            len: wr.data.len() as u32,
            context: 0,
        }
        .encode();
        msg.extend_from_slice(&wr.data);
        let emits = match self.engine.tcp_send(t, conn, msg, SendToken(token)) {
            Ok(e) => e,
            Err(e) => {
                self.tokens.remove(&token);
                return Err(e.into());
            }
        };
        let ops = self.engine.take_ops();
        let t = self.charge_muls(t, ops.muls, PacketClass::DataSend);
        let mut outputs = Vec::new();
        self.process_emits_from(t, emits, TxOrigin::PostedWr, &mut outputs);
        Ok(outputs)
    }

    /// Posts an RDMA Read: asks the peer's NIC for `len` bytes of its
    /// registered region. Completes as [`CompletionKind::RdmaRead`]
    /// carrying the data; the peer's process is never involved.
    ///
    /// # Errors
    ///
    /// As for [`QpipNic::post_rdma_write`].
    pub fn post_rdma_read(
        &mut self,
        now: SimTime,
        qp: QpId,
        wr: RdmaReadWr,
    ) -> Result<Vec<NicOutput>, NicError> {
        let conn = self.rdma_conn(qp)?;
        let t = self.tx_wr_preamble(now);
        let ctx = self.next_read_ctx;
        self.next_read_ctx += 1;
        self.pending_reads.insert(ctx, (qp, wr.wr_id));
        let token = self.next_token;
        self.next_token += 1;
        self.tokens.insert(token, TokenUse::Internal);
        let msg = RdmaFrame {
            opcode: RdmaOpcode::ReadRequest,
            rkey: wr.rkey.0,
            offset: wr.remote_offset,
            len: wr.len,
            context: ctx,
        }
        .encode();
        let emits = match self.engine.tcp_send(t, conn, msg, SendToken(token)) {
            Ok(e) => e,
            Err(e) => {
                self.tokens.remove(&token);
                self.pending_reads.remove(&ctx);
                return Err(e.into());
            }
        };
        let ops = self.engine.take_ops();
        let t = self.charge_muls(t, ops.muls, PacketClass::DataSend);
        let mut outputs = Vec::new();
        self.process_emits_from(t, emits, TxOrigin::PostedWr, &mut outputs);
        Ok(outputs)
    }

    fn rdma_conn(&self, qp: QpId) -> Result<ConnId, NicError> {
        if !self.cfg.rdma_framing {
            return Err(NicError::InvalidState("RDMA verbs need rdma_framing"));
        }
        let q = self.qps.get(&qp).ok_or(NicError::UnknownQp(qp))?;
        if q.service != ServiceType::ReliableTcp {
            return Err(NicError::InvalidState("RDMA on a UDP QP"));
        }
        q.conn.ok_or(NicError::InvalidState("RDMA on an unconnected QP"))
    }

    /// Doorbell + schedule + WR fetch for a host-posted work request.
    fn tx_wr_preamble(&mut self, now: SimTime) -> SimTime {
        let t = self.charge(
            now,
            Stage::DoorbellProcess,
            PacketClass::DataSend,
            Cycles(params::NIC_STAGE_DOORBELL_CYCLES),
        );
        let t = self.charge(
            t,
            Stage::Schedule,
            PacketClass::DataSend,
            Cycles(params::NIC_STAGE_SCHEDULE_CYCLES),
        );
        self.charge(t, Stage::GetWr, PacketClass::DataSend, Cycles(params::NIC_STAGE_GET_WR_CYCLES))
    }

    /// Dispatches one framed message (RDMA-enabled QPs).
    fn deliver_framed(
        &mut self,
        t: SimTime,
        conn: ConnId,
        qp: QpId,
        data: Vec<u8>,
        outputs: &mut Vec<NicOutput>,
    ) -> SimTime {
        let parsed = RdmaFrame::parse(&data);
        let Ok((frame, payload)) = parsed else {
            return self.rdma_protection_error(t, conn, outputs);
        };
        match frame.opcode {
            RdmaOpcode::Send => {
                let q = self.qps.get_mut(&qp).expect("mapped conn has a QP");
                if let Some(wr) = q.recv_queue.pop_front() {
                    q.posted_bytes = q.posted_bytes.saturating_sub(wr.capacity as u64);
                    let recv_cq = q.recv_cq;
                    self.place_message(
                        t,
                        qp,
                        recv_cq,
                        wr,
                        payload.to_vec(),
                        None,
                        PacketClass::DataRecv,
                        outputs,
                    )
                } else {
                    q.backlog.push_back((payload.to_vec(), None));
                    self.stats.tcp_backlogged += 1;
                    t
                }
            }
            RdmaOpcode::Write => {
                let ok = self
                    .mrs
                    .get_mut(&frame.rkey)
                    .filter(|r| {
                        (frame.offset as usize)
                            .checked_add(payload.len())
                            .is_some_and(|end| end <= r.len())
                    })
                    .map(|r| {
                        let off = frame.offset as usize;
                        r[off..off + payload.len()].copy_from_slice(payload);
                    })
                    .is_some();
                if !ok {
                    return self.rdma_protection_error(t, conn, outputs);
                }
                self.stats.rdma_writes += 1;
                // direct data placement: DMA into the registered buffer
                let t = self.charge(
                    t,
                    Stage::PutData,
                    PacketClass::DataRecv,
                    Cycles(params::NIC_STAGE_PUT_DATA_CYCLES),
                );
                let _dma = self.dma_write.transfer(t, payload.len() as u64)
                    + SimDuration::from_nanos(params::PCI_DMA_SETUP_NS);
                self.charge(
                    t,
                    Stage::UpdateRx,
                    PacketClass::DataRecv,
                    Cycles(params::NIC_STAGE_UPDATE_RX_CYCLES),
                )
            }
            RdmaOpcode::ReadRequest => {
                let Some(data) = self.mrs.get(&frame.rkey).and_then(|r| {
                    let off = frame.offset as usize;
                    let end = off.checked_add(frame.len as usize)?;
                    r.get(off..end).map(<[u8]>::to_vec)
                }) else {
                    return self.rdma_protection_error(t, conn, outputs);
                };
                self.stats.rdma_reads_served += 1;
                // fetch the bytes from host memory
                let t = self.charge(
                    t,
                    Stage::GetData,
                    PacketClass::DataSend,
                    Cycles(params::NIC_STAGE_GET_DATA_CYCLES),
                );
                let _dma = self.dma_read.transfer(t, data.len() as u64)
                    + SimDuration::from_nanos(params::PCI_DMA_SETUP_NS);
                let token = self.next_token;
                self.next_token += 1;
                self.tokens.insert(token, TokenUse::Internal);
                let mut msg = RdmaFrame {
                    opcode: RdmaOpcode::ReadResponse,
                    rkey: frame.rkey,
                    offset: frame.offset,
                    len: data.len() as u32,
                    context: frame.context,
                }
                .encode();
                msg.extend_from_slice(&data);
                match self.engine.tcp_send(t, conn, msg, SendToken(token)) {
                    Ok(emits) => {
                        let _ = self.engine.take_ops();
                        self.process_emits_from(t, emits, TxOrigin::Deferred, outputs);
                        t
                    }
                    Err(_) => self.rdma_protection_error(t, conn, outputs),
                }
            }
            RdmaOpcode::ReadResponse => {
                // the echoed context must belong to a read issued on the
                // very connection the response arrived on
                let valid = self
                    .pending_reads
                    .get(&frame.context)
                    .is_some_and(|(owner, _)| self.conn_to_qp.get(&conn) == Some(owner));
                if !valid {
                    return t; // stale, duplicate, or cross-connection response
                }
                let Some((qp, wr_id)) = self.pending_reads.remove(&frame.context) else {
                    return t;
                };
                // place the bytes in the requester's registered buffer
                let t = self.charge(
                    t,
                    Stage::PutData,
                    PacketClass::DataRecv,
                    Cycles(params::NIC_STAGE_PUT_DATA_CYCLES),
                );
                let dma = self.dma_write.transfer(t, payload.len() as u64)
                    + SimDuration::from_nanos(params::PCI_DMA_SETUP_NS);
                let t = self.charge(
                    t,
                    Stage::UpdateRx,
                    PacketClass::DataRecv,
                    Cycles(params::NIC_STAGE_UPDATE_RX_CYCLES),
                );
                let send_cq = self.qps[&qp].send_cq;
                outputs.push(NicOutput::Complete(
                    send_cq,
                    Completion {
                        qp,
                        wr_id,
                        kind: CompletionKind::RdmaRead { data: payload.to_vec() },
                        status: CompletionStatus::Success,
                        visible_at: t.max(dma),
                    },
                ));
                t
            }
        }
    }

    /// Flushes a dead QP's outstanding work: every in-flight send/RDMA
    /// WR completes with [`CompletionStatus::ConnectionError`] (the
    /// Infiniband queue-flush semantic) and pending reads are failed.
    fn flush_qp(&mut self, t: SimTime, qp: QpId, outputs: &mut Vec<NicOutput>) {
        let Some(q) = self.qps.get(&qp) else { return };
        let send_cq = q.send_cq;
        let stale: Vec<u64> = self
            .tokens
            .iter()
            .filter_map(|(&tok, use_)| match use_ {
                TokenUse::Send(owner, _) | TokenUse::RdmaWrite(owner, _) if *owner == qp => {
                    Some(tok)
                }
                _ => None,
            })
            .collect();
        for tok in stale {
            let Some(use_) = self.tokens.remove(&tok) else { continue };
            let (wr_id, kind) = match use_ {
                TokenUse::Send(_, wr_id) => (wr_id, CompletionKind::Send),
                TokenUse::RdmaWrite(_, wr_id) => (wr_id, CompletionKind::RdmaWrite),
                TokenUse::Internal => continue,
            };
            outputs.push(NicOutput::Complete(
                send_cq,
                Completion {
                    qp,
                    wr_id,
                    kind,
                    status: CompletionStatus::ConnectionError,
                    visible_at: t,
                },
            ));
        }
        let stale_reads: Vec<u64> = self
            .pending_reads
            .iter()
            .filter(|(_, (owner, _))| *owner == qp)
            .map(|(&ctx, _)| ctx)
            .collect();
        for ctx in stale_reads {
            let Some((_, wr_id)) = self.pending_reads.remove(&ctx) else { continue };
            outputs.push(NicOutput::Complete(
                send_cq,
                Completion {
                    qp,
                    wr_id,
                    kind: CompletionKind::RdmaRead { data: Vec::new() },
                    status: CompletionStatus::ConnectionError,
                    visible_at: t,
                },
            ));
        }
    }

    /// Protection error: count it and tear the connection down, as
    /// Infiniband access-violation semantics require.
    fn rdma_protection_error(
        &mut self,
        t: SimTime,
        conn: ConnId,
        outputs: &mut Vec<NicOutput>,
    ) -> SimTime {
        self.stats.rdma_protection_errors += 1;
        if let Some(qp) = self.conn_to_qp.remove(&conn) {
            if let Some(q) = self.qps.get_mut(&qp) {
                q.conn = None;
                q.established = false;
                outputs.push(NicOutput::Complete(
                    q.recv_cq,
                    Completion {
                        qp,
                        wr_id: 0,
                        kind: CompletionKind::PeerDisconnected,
                        status: CompletionStatus::ConnectionError,
                        visible_at: t,
                    },
                ));
            }
            self.flush_qp(t, qp, outputs);
        }
        let mut t2 = t;
        if let Ok(emits) = self.engine.tcp_abort(t, conn) {
            for e in emits {
                if let Emit::Packet(p) = e {
                    t2 = self.emit_one(t2, p, TxOrigin::Internal, outputs);
                }
            }
        }
        t2
    }

    // ----- receive FSM ------------------------------------------------------

    /// A packet's last byte arrived from the fabric at `now`.
    pub fn on_packet(&mut self, now: SimTime, bytes: &[u8]) -> Vec<NicOutput> {
        if qpip_netstack::frag::is_fragment(bytes) {
            // per-fragment receive work; the transport parse happens once
            // the original packet is whole (end-to-end reassembly, §4.1)
            self.stats.rx_packets += 1;
            let t = self.charge(
                now,
                Stage::MediaRcv,
                PacketClass::DataRecv,
                Cycles(params::NIC_STAGE_MEDIA_RCV_CYCLES),
            );
            let t = self.charge(
                t,
                Stage::IpParse,
                PacketClass::DataRecv,
                Cycles(params::NIC_STAGE_IP_PARSE_CYCLES),
            );
            return match self.reassembler.push(bytes) {
                Some(full) => self.on_whole_packet(t, &full, false),
                None => Vec::new(),
            };
        }
        self.stats.rx_packets += 1;
        self.on_whole_packet(now, bytes, true)
    }

    /// Protocol processing of a complete (possibly reassembled) packet.
    fn on_whole_packet(
        &mut self,
        now: SimTime,
        bytes: &[u8],
        charge_media: bool,
    ) -> Vec<NicOutput> {
        let class = classify_incoming(bytes);
        // reassembled packets (charge_media = false) already paid
        // media-rcv and IP parse per fragment
        let t = if charge_media {
            let t = self.charge(
                now,
                Stage::MediaRcv,
                class,
                Cycles(params::NIC_STAGE_MEDIA_RCV_CYCLES),
            );
            self.charge(t, Stage::IpParse, class, Cycles(params::NIC_STAGE_IP_PARSE_CYCLES))
        } else {
            now
        };
        // firmware checksum verification touches every byte (§4.2.1); the
        // hardware mode verifies during the receive DMA for free
        let t = if self.cfg.checksum == ChecksumMode::Firmware {
            let transport = bytes.len().saturating_sub(40) as u64;
            self.charge(
                t,
                Stage::FwChecksum,
                class,
                Cycles(transport * params::NIC_FW_CSUM_CYCLES_PER_BYTE),
            )
        } else {
            t
        };
        let emits = self.engine.on_packet(t, bytes);
        let ops = self.engine.take_ops();
        // transport parse: base + RTT-estimator multiplies (Table 3: ACK
        // parsing costs double because of the software multiply, §4.2.2)
        let parse_base = match class {
            PacketClass::UdpRecv => params::NIC_STAGE_UDP_PARSE_CYCLES,
            _ => params::NIC_STAGE_TCP_PARSE_CYCLES,
        };
        let parse_stage = match class {
            PacketClass::UdpRecv => Stage::UdpParse,
            _ => Stage::TcpParse,
        };
        let t = self.charge(t, parse_stage, class, Cycles(parse_base + ops.muls * self.mul_cycles));
        let mut outputs = Vec::new();
        self.process_emits(t, emits, &mut outputs);
        outputs
    }

    // ----- timer path ---------------------------------------------------------

    /// Earliest protocol timer deadline (retransmit, delayed ACK,
    /// TIME-WAIT), polled by the scheduler loop.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.engine.next_deadline()
    }

    /// Fires due protocol timers (Figure 2: "Sched. T/O, Update WR").
    pub fn on_timer(&mut self, now: SimTime) -> Vec<NicOutput> {
        let t = self.charge(
            now,
            Stage::Schedule,
            PacketClass::Control,
            Cycles(params::NIC_STAGE_TIMER_SCAN_CYCLES),
        );
        let emits = self.engine.on_timer(t);
        let ops = self.engine.take_ops();
        let t = self.charge_muls(t, ops.muls, PacketClass::Control);
        let mut outputs = Vec::new();
        self.process_emits_from(t, emits, TxOrigin::Deferred, &mut outputs);
        outputs
    }

    // ----- internals ---------------------------------------------------------

    fn charge(&mut self, start: SimTime, stage: Stage, class: PacketClass, c: Cycles) -> SimTime {
        if c.count() == 0 {
            return start;
        }
        if let Some(tr) = &self.tracer {
            tr.emit_node(
                start,
                TraceEvent::FwFsm { stage: stage.trace_name(), class: class.trace_name() },
            );
        }
        let d = self.clock.cycles_to_duration(c);
        let end = self.proc.acquire(start, d);
        self.occupancy.record(stage, class, d);
        end
    }

    fn charge_muls(&mut self, start: SimTime, muls: u64, class: PacketClass) -> SimTime {
        if muls == 0 {
            return start;
        }
        self.charge(start, Stage::TcpParse, class, Cycles(muls * self.mul_cycles))
    }

    fn process_emits(&mut self, t: SimTime, emits: Vec<Emit>, outputs: &mut Vec<NicOutput>) {
        self.process_emits_from(t, emits, TxOrigin::Internal, outputs);
    }

    fn process_emits_from(
        &mut self,
        t: SimTime,
        emits: Vec<Emit>,
        data_origin: TxOrigin,
        outputs: &mut Vec<NicOutput>,
    ) {
        let mut t = t;
        for emit in emits {
            match emit {
                Emit::Packet(pkt) => {
                    let origin = match pkt.kind {
                        PacketKind::TcpData | PacketKind::Udp => data_origin,
                        _ => TxOrigin::Internal,
                    };
                    t = self.emit_one(t, pkt, origin, outputs);
                }
                Emit::UdpDelivered { port, src, payload } => {
                    t = self.deliver_udp(t, port, src, payload, outputs);
                }
                Emit::TcpDelivered { conn, data } => {
                    t = self.deliver_tcp(t, conn, data, outputs);
                }
                Emit::TcpSendComplete { token, .. } => {
                    t = self.complete_send(t, token.0, outputs);
                }
                Emit::TcpConnected { conn } => {
                    t = self.connection_up(t, conn, outputs);
                }
                Emit::TcpAccepted { listener_port, conn, .. } => {
                    t = self.mate_connection(t, listener_port, conn, outputs);
                }
                Emit::TcpPeerClosed { conn } => {
                    if let Some(&qp) = self.conn_to_qp.get(&conn) {
                        let q = &self.qps[&qp];
                        outputs.push(NicOutput::Complete(
                            q.recv_cq,
                            Completion {
                                qp,
                                wr_id: 0,
                                kind: CompletionKind::PeerDisconnected,
                                status: CompletionStatus::Success,
                                visible_at: t,
                            },
                        ));
                    }
                }
                Emit::TcpClosed { conn } => {
                    if let Some(qp) = self.conn_to_qp.remove(&conn) {
                        if let Some(q) = self.qps.get_mut(&qp) {
                            q.conn = None;
                            q.established = false;
                        }
                        self.flush_qp(t, qp, outputs);
                    }
                }
                Emit::TcpReset { conn } => {
                    if let Some(qp) = self.conn_to_qp.remove(&conn) {
                        if let Some(q) = self.qps.get_mut(&qp) {
                            q.conn = None;
                            q.established = false;
                            outputs.push(NicOutput::Complete(
                                q.recv_cq,
                                Completion {
                                    qp,
                                    wr_id: 0,
                                    kind: CompletionKind::PeerDisconnected,
                                    status: CompletionStatus::ConnectionError,
                                    visible_at: t,
                                },
                            ));
                        }
                        self.flush_qp(t, qp, outputs);
                    }
                }
            }
        }
    }

    /// Charges the transmit-side stages for one outgoing packet and
    /// produces the Transmit output. Returns the time the processor is
    /// free again.
    fn emit_one(
        &mut self,
        t: SimTime,
        pkt: PacketOut,
        origin: TxOrigin,
        outputs: &mut Vec<NicOutput>,
    ) -> SimTime {
        let class = match pkt.kind {
            PacketKind::TcpData => PacketClass::DataSend,
            PacketKind::TcpAck => PacketClass::AckSend,
            PacketKind::TcpControl => PacketClass::Control,
            PacketKind::Udp => PacketClass::UdpSend,
        };
        let mut t = t;
        match origin {
            TxOrigin::PostedWr => {} // doorbell/schedule/get-wr already charged
            TxOrigin::Internal => {
                t = self.charge(
                    t,
                    Stage::DoorbellProcess,
                    class,
                    Cycles(params::NIC_STAGE_DOORBELL_CYCLES),
                );
                t = self.charge(
                    t,
                    Stage::Schedule,
                    class,
                    Cycles(params::NIC_STAGE_SCHEDULE_CYCLES),
                );
            }
            TxOrigin::Deferred => {
                t = self.charge(
                    t,
                    Stage::Schedule,
                    class,
                    Cycles(params::NIC_STAGE_SCHEDULE_CYCLES),
                );
            }
        }
        // payload DMA from the registered host buffer (data packets only)
        let payload_len = pkt.payload_len();
        let mut data_ready = t;
        if matches!(pkt.kind, PacketKind::TcpData | PacketKind::Udp) && payload_len > 0 {
            t = self.charge(t, Stage::GetData, class, Cycles(params::NIC_STAGE_GET_DATA_CYCLES));
            let dma_done = self.dma_read.transfer(t, payload_len as u64)
                + SimDuration::from_nanos(params::PCI_DMA_SETUP_NS);
            data_ready = dma_done;
        }
        // header construction
        t = match pkt.kind {
            PacketKind::Udp => self.charge(
                t,
                Stage::BuildUdpHdr,
                class,
                Cycles(params::NIC_STAGE_BUILD_UDP_CYCLES),
            ),
            _ => self.charge(
                t,
                Stage::BuildTcpHdr,
                class,
                Cycles(params::NIC_STAGE_BUILD_TCP_CYCLES),
            ),
        };
        t = self.charge(t, Stage::BuildIpHdr, class, Cycles(params::NIC_STAGE_BUILD_IP_CYCLES));
        // firmware checksum over the whole transport segment, computed
        // incrementally as the DMA engine streams the data in — ready
        // when both the arithmetic and the transfer finish
        if self.cfg.checksum == ChecksumMode::Firmware {
            let transport = (pkt.bytes.len() - 40) as u64;
            t = self.charge(
                t,
                Stage::FwChecksum,
                class,
                Cycles(transport * params::NIC_FW_CSUM_CYCLES_PER_BYTE),
            );
            data_ready = data_ready.max(t);
        }
        // the processor programs the media engine and moves on; the
        // autonomous transmit engine starts once the payload DMA lands
        let proc_done =
            self.charge(t, Stage::MediaXmt, class, Cycles(params::NIC_STAGE_MEDIA_XMT_CYCLES));
        let mut wire_at = proc_done.max(data_ready);
        if pkt.bytes.len() > self.cfg.mtu {
            // IPv6 end-to-end fragmentation (§4.1): the firmware splits
            // the oversized segment; each extra fragment costs one IP
            // header build and one media handoff
            self.next_frag_id = self.next_frag_id.wrapping_add(1);
            let frags =
                qpip_netstack::frag::fragment_packet(&pkt.bytes, self.cfg.mtu, self.next_frag_id);
            let mut proc_done = proc_done;
            for (i, f) in frags.into_iter().enumerate() {
                if i > 0 {
                    proc_done = self.charge(
                        proc_done,
                        Stage::BuildIpHdr,
                        class,
                        Cycles(params::NIC_STAGE_BUILD_IP_CYCLES),
                    );
                    proc_done = self.charge(
                        proc_done,
                        Stage::MediaXmt,
                        class,
                        Cycles(params::NIC_STAGE_MEDIA_XMT_CYCLES),
                    );
                    wire_at = wire_at.max(proc_done);
                }
                self.stats.tx_packets += 1;
                outputs.push(NicOutput::Transmit {
                    at: wire_at,
                    dst: pkt.dst,
                    bytes: qpip_wire::Packet::from_vec(f),
                    kind: pkt.kind,
                });
            }
            return self.charge(
                proc_done,
                Stage::UpdateTx,
                class,
                Cycles(params::NIC_STAGE_UPDATE_TX_CYCLES),
            );
        }
        self.stats.tx_packets += 1;
        outputs.push(NicOutput::Transmit {
            at: wire_at,
            dst: pkt.dst,
            bytes: pkt.bytes,
            kind: pkt.kind,
        });
        // post-send status update (processor-side, overlaps the wire)
        self.charge(proc_done, Stage::UpdateTx, class, Cycles(params::NIC_STAGE_UPDATE_TX_CYCLES))
    }

    fn deliver_udp(
        &mut self,
        t: SimTime,
        port: u16,
        src: Endpoint,
        payload: Vec<u8>,
        outputs: &mut Vec<NicOutput>,
    ) -> SimTime {
        let Some(&qp) = self.udp_port_to_qp.get(&port) else {
            self.stats.udp_no_wr_drops += 1;
            return t;
        };
        let q = self.qps.get_mut(&qp).expect("bound port has a QP");
        let Some(wr) = q.recv_queue.pop_front() else {
            // no WR posted: the datagram is dropped (unreliable service)
            self.stats.udp_no_wr_drops += 1;
            return t;
        };
        q.posted_bytes = q.posted_bytes.saturating_sub(wr.capacity as u64);
        let recv_cq = q.recv_cq;
        self.place_message(t, qp, recv_cq, wr, payload, Some(src), PacketClass::UdpRecv, outputs)
    }

    fn deliver_tcp(
        &mut self,
        t: SimTime,
        conn: ConnId,
        data: Vec<u8>,
        outputs: &mut Vec<NicOutput>,
    ) -> SimTime {
        let Some(&qp) = self.conn_to_qp.get(&conn) else {
            return t;
        };
        if self.cfg.rdma_framing {
            return self.deliver_framed(t, conn, qp, data, outputs);
        }
        let q = self.qps.get_mut(&qp).expect("mapped conn has a QP");
        if let Some(wr) = q.recv_queue.pop_front() {
            q.posted_bytes = q.posted_bytes.saturating_sub(wr.capacity as u64);
            let recv_cq = q.recv_cq;
            self.place_message(t, qp, recv_cq, wr, data, None, PacketClass::DataRecv, outputs)
        } else {
            // reliable service: park in SRAM until the host posts a WR
            q.backlog.push_back((data, None));
            self.stats.tcp_backlogged += 1;
            t
        }
    }

    /// GetWr + PutData(+DMA) + UpdateRx for one in-order message
    /// (Table 3's data-receive column).
    #[allow(clippy::too_many_arguments)]
    fn place_message(
        &mut self,
        t: SimTime,
        qp: QpId,
        recv_cq: CqId,
        wr: RecvWr,
        data: Vec<u8>,
        src: Option<Endpoint>,
        class: PacketClass,
        outputs: &mut Vec<NicOutput>,
    ) -> SimTime {
        let t = self.charge(t, Stage::GetWr, class, Cycles(params::NIC_STAGE_GET_WR_CYCLES));
        let status = if data.len() > wr.capacity {
            self.stats.length_errors += 1;
            CompletionStatus::LocalLengthError { len: data.len(), capacity: wr.capacity }
        } else {
            CompletionStatus::Success
        };
        let t = self.charge(t, Stage::PutData, class, Cycles(params::NIC_STAGE_PUT_DATA_CYCLES));
        let dma_done = self.dma_write.transfer(t, data.len() as u64)
            + SimDuration::from_nanos(params::PCI_DMA_SETUP_NS);
        let t = self.charge(t, Stage::UpdateRx, class, Cycles(params::NIC_STAGE_UPDATE_RX_CYCLES));
        let visible_at = t.max(dma_done);
        outputs.push(NicOutput::Complete(
            recv_cq,
            Completion {
                qp,
                wr_id: wr.wr_id,
                kind: CompletionKind::Recv { data, src },
                status,
                visible_at,
            },
        ));
        t
    }

    fn complete_send(&mut self, t: SimTime, token: u64, outputs: &mut Vec<NicOutput>) -> SimTime {
        let Some(use_) = self.tokens.remove(&token) else {
            return t;
        };
        let (qp, wr_id, kind) = match use_ {
            TokenUse::Send(qp, wr_id) => (qp, wr_id, CompletionKind::Send),
            TokenUse::RdmaWrite(qp, wr_id) => (qp, wr_id, CompletionKind::RdmaWrite),
            // internal traffic (read machinery) completes silently
            TokenUse::Internal => return t,
        };
        // Table 3, ACK-receive Update row: retire the WR, write the CQ
        // entry and roll the QP/TCB state forward (9 µs).
        let t = self.charge(
            t,
            Stage::UpdateRx,
            PacketClass::AckRecv,
            Cycles(params::NIC_STAGE_UPDATE_ACK_CYCLES),
        );
        let send_cq = self.qps[&qp].send_cq;
        outputs.push(NicOutput::Complete(
            send_cq,
            Completion { qp, wr_id, kind, status: CompletionStatus::Success, visible_at: t },
        ));
        t
    }

    fn connection_up(&mut self, t: SimTime, conn: ConnId, outputs: &mut Vec<NicOutput>) -> SimTime {
        let Some(&qp) = self.conn_to_qp.get(&conn) else {
            return t;
        };
        let q = self.qps.get_mut(&qp).expect("mapped");
        q.established = true;
        let posted = q.posted_bytes;
        let recv_cq = q.recv_cq;
        outputs.push(NicOutput::Complete(
            recv_cq,
            Completion {
                qp,
                wr_id: 0,
                kind: CompletionKind::ConnectionEstablished,
                status: CompletionStatus::Success,
                visible_at: t,
            },
        ));
        // announce the real (posted-WR) window now that we are connected
        let emits = self.engine.set_recv_space(t, conn, posted).unwrap_or_default();
        let _ = self.engine.take_ops();
        self.process_emits(t, emits, outputs);
        t
    }

    fn mate_connection(
        &mut self,
        t: SimTime,
        listener_port: u16,
        conn: ConnId,
        outputs: &mut Vec<NicOutput>,
    ) -> SimTime {
        let Some(qp) = self.accept_pool.get_mut(&listener_port).and_then(VecDeque::pop_front)
        else {
            // no idle QP: refuse the connection
            let emits = self.engine.tcp_abort(t, conn).unwrap_or_default();
            let mut t2 = t;
            for e in emits {
                if let Emit::Packet(p) = e {
                    t2 = self.emit_one(t2, p, TxOrigin::Internal, outputs);
                }
            }
            return t2;
        };
        self.conn_to_qp.insert(conn, qp);
        self.qps.get_mut(&qp).expect("pool QP exists").conn = Some(conn);
        self.connection_up(t, conn, outputs)
    }

    fn drain_backlog(&mut self, t: SimTime, qp: QpId, outputs: &mut Vec<NicOutput>) {
        let mut t = t;
        loop {
            let q = self.qps.get_mut(&qp).expect("caller checked");
            if q.backlog.is_empty() || q.recv_queue.is_empty() {
                break;
            }
            let (data, src) = q.backlog.pop_front().expect("nonempty");
            let wr = q.recv_queue.pop_front().expect("nonempty");
            q.posted_bytes = q.posted_bytes.saturating_sub(wr.capacity as u64);
            let recv_cq = q.recv_cq;
            t = self.place_message(t, qp, recv_cq, wr, data, src, PacketClass::DataRecv, outputs);
        }
    }
}

/// Cheap pre-classification of an incoming packet for occupancy
/// bucketing (the engine does the real parse).
fn classify_incoming(bytes: &[u8]) -> PacketClass {
    if bytes.len() < 40 {
        return PacketClass::Control;
    }
    match bytes[6] {
        17 => PacketClass::UdpRecv,
        6 => {
            let ip_payload = usize::from(u16::from_be_bytes([bytes[4], bytes[5]]));
            let Some(transport) = bytes.get(40..40 + ip_payload) else {
                return PacketClass::Control;
            };
            if transport.len() < 20 {
                return PacketClass::Control;
            }
            let off = usize::from(transport[12] >> 4) * 4;
            let flags = transport[13];
            if flags & 0b0000_0111 != 0 {
                // SYN/FIN/RST
                PacketClass::Control
            } else if transport.len() > off {
                PacketClass::DataRecv
            } else {
                PacketClass::AckRecv
            }
        }
        _ => PacketClass::Control,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u16) -> Ipv6Addr {
        Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, n)
    }

    /// Builds a NIC with one UDP QP bound to `port`.
    fn udp_nic(n: u16, port: u16) -> (QpipNic, QpId, CqId) {
        let mut nic = QpipNic::new(NicConfig::paper_default(), addr(n));
        let cq = nic.create_cq();
        let qp = nic.create_qp(ServiceType::UnreliableUdp, cq, cq).unwrap();
        nic.udp_bind(qp, port).unwrap();
        (nic, qp, cq)
    }

    fn transmits(outputs: &[NicOutput]) -> Vec<&NicOutput> {
        outputs.iter().filter(|o| matches!(o, NicOutput::Transmit { .. })).collect()
    }

    fn completions(outputs: &[NicOutput]) -> Vec<&Completion> {
        outputs
            .iter()
            .filter_map(|o| match o {
                NicOutput::Complete(_, c) => Some(c),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn udp_send_produces_packet_and_immediate_completion() {
        let (mut a, qp, _cq) = udp_nic(1, 7000);
        let out = a
            .post_send(
                SimTime::ZERO,
                qp,
                SendWr {
                    wr_id: 42,
                    payload: vec![1, 2, 3],
                    dst: Some(Endpoint::new(addr(2), 7001)),
                },
            )
            .unwrap();
        assert_eq!(transmits(&out).len(), 1);
        let comps = completions(&out);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].wr_id, 42);
        assert_eq!(comps[0].kind, CompletionKind::Send);
        // handoff happens after the Table-2 stage budget (~16 us for udp)
        let NicOutput::Transmit { at, .. } = out[0] else { panic!() };
        let us = at.as_micros_f64();
        assert!((10.0..25.0).contains(&us), "{us}");
    }

    #[test]
    fn udp_roundtrip_between_two_nics_with_posted_wr() {
        let (mut a, qa, _) = udp_nic(1, 7000);
        let (mut b, qb, _) = udp_nic(2, 7001);
        b.post_recv(SimTime::ZERO, qb, RecvWr { wr_id: 9, capacity: 64 }).unwrap();
        let out = a
            .post_send(
                SimTime::ZERO,
                qa,
                SendWr {
                    wr_id: 1,
                    payload: b"ping".to_vec(),
                    dst: Some(Endpoint::new(addr(2), 7001)),
                },
            )
            .unwrap();
        let NicOutput::Transmit { at, bytes, .. } = &out[0] else { panic!() };
        let out_b = b.on_packet(*at, bytes);
        let comps = completions(&out_b);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].wr_id, 9);
        match &comps[0].kind {
            CompletionKind::Recv { data, src } => {
                assert_eq!(data, b"ping");
                assert_eq!(src.unwrap().port, 7000);
            }
            k => panic!("{k:?}"),
        }
    }

    #[test]
    fn udp_without_recv_wr_is_dropped() {
        let (mut a, qa, _) = udp_nic(1, 7000);
        let (mut b, _qb, _) = udp_nic(2, 7001);
        let out = a
            .post_send(
                SimTime::ZERO,
                qa,
                SendWr {
                    wr_id: 1,
                    payload: b"lost".to_vec(),
                    dst: Some(Endpoint::new(addr(2), 7001)),
                },
            )
            .unwrap();
        let NicOutput::Transmit { at, bytes, .. } = &out[0] else { panic!() };
        let out_b = b.on_packet(*at, bytes);
        assert!(completions(&out_b).is_empty());
        assert_eq!(b.stats().udp_no_wr_drops, 1);
    }

    #[test]
    fn recv_larger_than_buffer_is_length_error() {
        let (mut a, qa, _) = udp_nic(1, 7000);
        let (mut b, qb, _) = udp_nic(2, 7001);
        b.post_recv(SimTime::ZERO, qb, RecvWr { wr_id: 9, capacity: 2 }).unwrap();
        let out = a
            .post_send(
                SimTime::ZERO,
                qa,
                SendWr {
                    wr_id: 1,
                    payload: b"four".to_vec(),
                    dst: Some(Endpoint::new(addr(2), 7001)),
                },
            )
            .unwrap();
        let NicOutput::Transmit { at, bytes, .. } = &out[0] else { panic!() };
        let out_b = b.on_packet(*at, bytes);
        let comps = completions(&out_b);
        assert_eq!(comps[0].status, CompletionStatus::LocalLengthError { len: 4, capacity: 2 });
        assert_eq!(b.stats().length_errors, 1);
    }

    #[test]
    fn qp_creation_validates_cqs() {
        let mut nic = QpipNic::new(NicConfig::paper_default(), addr(1));
        assert_eq!(
            nic.create_qp(ServiceType::ReliableTcp, CqId(1), CqId(1)),
            Err(NicError::UnknownCq(CqId(1)))
        );
        let cq = nic.create_cq();
        assert!(nic.create_qp(ServiceType::ReliableTcp, cq, cq).is_ok());
    }

    #[test]
    fn udp_bind_rejects_tcp_qp_and_double_bind() {
        let mut nic = QpipNic::new(NicConfig::paper_default(), addr(1));
        let cq = nic.create_cq();
        let tcp_qp = nic.create_qp(ServiceType::ReliableTcp, cq, cq).unwrap();
        assert!(matches!(nic.udp_bind(tcp_qp, 5), Err(NicError::InvalidState(_))));
        let u1 = nic.create_qp(ServiceType::UnreliableUdp, cq, cq).unwrap();
        let u2 = nic.create_qp(ServiceType::UnreliableUdp, cq, cq).unwrap();
        nic.udp_bind(u1, 5).unwrap();
        assert!(matches!(nic.udp_bind(u2, 5), Err(NicError::Engine(_))));
    }

    #[test]
    fn firmware_checksum_charges_per_byte() {
        let mk = |mode| {
            let mut nic =
                QpipNic::new(NicConfig { checksum: mode, ..NicConfig::paper_default() }, addr(1));
            let cq = nic.create_cq();
            let qp = nic.create_qp(ServiceType::UnreliableUdp, cq, cq).unwrap();
            nic.udp_bind(qp, 7000).unwrap();
            let out = nic
                .post_send(
                    SimTime::ZERO,
                    qp,
                    SendWr {
                        wr_id: 1,
                        payload: vec![0; 8192],
                        dst: Some(Endpoint::new(addr(2), 7001)),
                    },
                )
                .unwrap();
            let NicOutput::Transmit { at, .. } = out[0] else { panic!() };
            at
        };
        let hw = mk(ChecksumMode::Hardware).as_micros_f64();
        let fw = mk(ChecksumMode::Firmware).as_micros_f64();
        // 8200 transport bytes × 5 cycles / 133 MHz ≈ 308 µs of checksum
        // arithmetic, partially hidden behind the ~103 µs payload DMA
        assert!(fw - hw > 180.0, "hw {hw} fw {fw}");
    }

    #[test]
    fn processor_serializes_back_to_back_sends() {
        let (mut a, qp, _) = udp_nic(1, 7000);
        let mk =
            |wr_id| SendWr { wr_id, payload: vec![0; 16], dst: Some(Endpoint::new(addr(2), 7001)) };
        let o1 = a.post_send(SimTime::ZERO, qp, mk(1)).unwrap();
        let o2 = a.post_send(SimTime::ZERO, qp, mk(2)).unwrap();
        let NicOutput::Transmit { at: t1, .. } = o1[0] else { panic!() };
        let NicOutput::Transmit { at: t2, .. } = o2[0] else { panic!() };
        assert!(t2 > t1, "second send queues behind the first on the processor");
    }

    #[test]
    fn occupancy_records_table2_stages_for_data_send() {
        let (mut a, qp, _) = udp_nic(1, 7000);
        a.post_send(
            SimTime::ZERO,
            qp,
            SendWr { wr_id: 1, payload: vec![0; 100], dst: Some(Endpoint::new(addr(2), 7001)) },
        )
        .unwrap();
        let occ = a.occupancy();
        for stage in [
            Stage::DoorbellProcess,
            Stage::Schedule,
            Stage::GetWr,
            Stage::GetData,
            Stage::BuildUdpHdr,
            Stage::BuildIpHdr,
            Stage::MediaXmt,
            Stage::UpdateTx,
        ] {
            assert_eq!(occ.count(stage, PacketClass::UdpSend), 1, "missing {stage:?}");
        }
    }

    #[test]
    fn classify_distinguishes_kinds() {
        use qpip_netstack::codec::build_udp_packet;
        let u = build_udp_packet(Endpoint::new(addr(1), 1), Endpoint::new(addr(2), 2), b"x");
        assert_eq!(classify_incoming(&u), PacketClass::UdpRecv);
        assert_eq!(classify_incoming(&[0u8; 10]), PacketClass::Control);
    }
}
