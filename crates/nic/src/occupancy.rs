//! Per-stage NIC-processor occupancy instrumentation.
//!
//! Reproduces the measurement the paper made with the LANai 9 cycle
//! counter (§4.2.2, Tables 2 & 3): every firmware stage records how long
//! the NIC processor was occupied, bucketed by what kind of packet was
//! being handled.

use std::collections::HashMap;

use qpip_sim::stats::Summary;
use qpip_sim::time::SimDuration;

/// A firmware processing stage (the rows of Tables 2 and 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    /// Doorbell FIFO service.
    DoorbellProcess,
    /// Endpoint scheduler pass.
    Schedule,
    /// Work-request fetch (DMA from host memory).
    GetWr,
    /// Data fetch (DMA setup + start).
    GetData,
    /// TCP header construction.
    BuildTcpHdr,
    /// UDP header construction.
    BuildUdpHdr,
    /// IPv6 header construction.
    BuildIpHdr,
    /// Firmware checksum loop (absent in hardware mode).
    FwChecksum,
    /// Handoff to the media transmit engine.
    MediaXmt,
    /// Post-send WR/QP status update.
    UpdateTx,
    /// Media receive engine service.
    MediaRcv,
    /// IPv6 header parse.
    IpParse,
    /// TCP header parse (incl. RTT-estimator math on ACKs).
    TcpParse,
    /// UDP header parse.
    UdpParse,
    /// Data placement (DMA to the posted host buffer).
    PutData,
    /// Receive-side WR/CQ update.
    UpdateRx,
}

impl Stage {
    /// The paper's row label.
    pub fn label(self) -> &'static str {
        match self {
            Stage::DoorbellProcess => "Doorbell Process",
            Stage::Schedule => "Schedule",
            Stage::GetWr => "Get WR",
            Stage::GetData => "Get Data",
            Stage::BuildTcpHdr => "Build TCP Hdr",
            Stage::BuildUdpHdr => "Build UDP Hdr",
            Stage::BuildIpHdr => "Build IP Hdr",
            Stage::FwChecksum => "FW Checksum",
            Stage::MediaXmt => "Send",
            Stage::UpdateTx => "Update",
            Stage::MediaRcv => "Media Rcv",
            Stage::IpParse => "IP Parse",
            Stage::TcpParse => "TCP Parse",
            Stage::UdpParse => "UDP Parse",
            Stage::PutData => "Put Data",
            Stage::UpdateRx => "Update",
        }
    }

    /// Stable snake-case name for traces.
    pub fn trace_name(self) -> &'static str {
        match self {
            Stage::DoorbellProcess => "doorbell",
            Stage::Schedule => "schedule",
            Stage::GetWr => "get_wr",
            Stage::GetData => "get_data",
            Stage::BuildTcpHdr => "build_tcp_hdr",
            Stage::BuildUdpHdr => "build_udp_hdr",
            Stage::BuildIpHdr => "build_ip_hdr",
            Stage::FwChecksum => "fw_checksum",
            Stage::MediaXmt => "media_xmt",
            Stage::UpdateTx => "wr_status_tx",
            Stage::MediaRcv => "media_rcv",
            Stage::IpParse => "ip_parse",
            Stage::TcpParse => "tcp_parse",
            Stage::UdpParse => "udp_parse",
            Stage::PutData => "put_data",
            Stage::UpdateRx => "wr_status_rx",
        }
    }
}

/// What the NIC was handling when a stage ran (the columns of Tables 2
/// and 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PacketClass {
    /// Transmit path carrying payload.
    DataSend,
    /// Transmit path for a pure acknowledgment.
    AckSend,
    /// Receive path carrying payload.
    DataRecv,
    /// Receive path for a pure acknowledgment.
    AckRecv,
    /// UDP transmit.
    UdpSend,
    /// UDP receive.
    UdpRecv,
    /// Connection management traffic.
    Control,
}

impl PacketClass {
    /// Stable snake-case name for traces.
    pub fn trace_name(self) -> &'static str {
        match self {
            PacketClass::DataSend => "data_send",
            PacketClass::AckSend => "ack_send",
            PacketClass::DataRecv => "data_recv",
            PacketClass::AckRecv => "ack_recv",
            PacketClass::UdpSend => "udp_send",
            PacketClass::UdpRecv => "udp_recv",
            PacketClass::Control => "control",
        }
    }
}

/// Accumulated per-(stage, class) occupancy.
#[derive(Debug, Default)]
pub struct Occupancy {
    cells: HashMap<(Stage, PacketClass), Summary>,
    total_busy: SimDuration,
}

impl Occupancy {
    /// Creates an empty table.
    pub fn new() -> Self {
        Occupancy::default()
    }

    /// Records one stage execution.
    pub fn record(&mut self, stage: Stage, class: PacketClass, d: SimDuration) {
        self.cells.entry((stage, class)).or_default().record_duration_us(d);
        self.total_busy += d;
    }

    /// Mean occupancy of a cell in microseconds, if it ever ran.
    pub fn mean_us(&self, stage: Stage, class: PacketClass) -> Option<f64> {
        self.cells.get(&(stage, class)).map(Summary::mean)
    }

    /// Number of executions of a cell.
    pub fn count(&self, stage: Stage, class: PacketClass) -> usize {
        self.cells.get(&(stage, class)).map_or(0, Summary::count)
    }

    /// Total processor busy time recorded.
    pub fn total_busy(&self) -> SimDuration {
        self.total_busy
    }

    /// All populated cells, sorted for stable output.
    pub fn cells(&self) -> Vec<((Stage, PacketClass), f64, usize)> {
        let mut v: Vec<_> = self.cells.iter().map(|(&k, s)| (k, s.mean(), s.count())).collect();
        v.sort_by_key(|a| a.0);
        v
    }

    /// Clears all recorded samples.
    pub fn reset(&mut self) {
        self.cells.clear();
        self.total_busy = SimDuration::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_averages() {
        let mut o = Occupancy::new();
        o.record(Stage::GetWr, PacketClass::DataSend, SimDuration::from_micros(5));
        o.record(Stage::GetWr, PacketClass::DataSend, SimDuration::from_micros(6));
        assert_eq!(o.mean_us(Stage::GetWr, PacketClass::DataSend), Some(5.5));
        assert_eq!(o.count(Stage::GetWr, PacketClass::DataSend), 2);
        assert_eq!(o.mean_us(Stage::GetWr, PacketClass::AckSend), None);
        assert_eq!(o.total_busy(), SimDuration::from_micros(11));
    }

    #[test]
    fn cells_sorted_and_reset() {
        let mut o = Occupancy::new();
        o.record(Stage::TcpParse, PacketClass::AckRecv, SimDuration::from_micros(14));
        o.record(Stage::IpParse, PacketClass::AckRecv, SimDuration::from_micros(1));
        let cells = o.cells();
        assert_eq!(cells.len(), 2);
        assert!(cells[0].0 .0 < cells[1].0 .0);
        o.reset();
        assert!(o.cells().is_empty());
        assert_eq!(o.total_busy(), SimDuration::ZERO);
    }

    #[test]
    fn labels_match_paper_rows() {
        assert_eq!(Stage::GetWr.label(), "Get WR");
        assert_eq!(Stage::MediaXmt.label(), "Send");
        assert_eq!(Stage::UpdateRx.label(), "Update");
    }
}
