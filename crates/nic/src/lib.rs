//! # qpip-nic — network interface models
//!
//! Two adapters, matching the paper's testbed (§4.1–4.2):
//!
//! * [`firmware::QpipNic`] — the prototype's **intelligent NIC**: a
//!   LANai-9-class 133 MHz processor, doorbell FIFO and PCI DMA engines
//!   running the QPIP firmware — doorbell, management, transmit and
//!   receive FSMs (Figures 1–2) over the offloaded TCP/UDP/IPv6 engine
//!   from `qpip-netstack`. Every stage charges cycles and is recorded in
//!   a per-stage [`occupancy::Occupancy`] table, which is how Tables 2
//!   and 3 are regenerated.
//! * [`conventional::ConventionalNic`] — the **dumb NICs** of the
//!   baselines (Intel Pro/1000 GigE, Myrinet+GM as an IP link): frame
//!   DMA, descriptor rings and interrupt moderation only; the protocol
//!   stack stays on the host (`qpip-host`).
//!
//! The QPIP NIC exposes the queue-pair verbs backend — create QP/CQ,
//! post send/receive, connection management — used by the `qpip` core
//! crate. Outputs are time-stamped so the node simulation can schedule
//! fabric deliveries and host completions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conventional;
pub mod firmware;
pub mod occupancy;
pub mod rdma;
pub mod types;

pub use conventional::{ConvNicConfig, ConventionalNic, RxOutcome};
pub use firmware::{NicOutput, NicStats, QpipNic};
pub use occupancy::{Occupancy, PacketClass, Stage};
pub use rdma::{RdmaFrame, RdmaOpcode};
pub use types::{
    ChecksumMode, Completion, CompletionKind, CompletionStatus, CqId, MrKey, NicConfig, NicError,
    QpId, RdmaReadWr, RdmaWriteWr, RecvWr, SendWr, ServiceType,
};
