//! RDMA framing for QPIP — the paper's second transaction class.
//!
//! §2.1 describes two classes of QP message transactions: send-receive
//! (which the prototype implements) and **remote DMA**, where "data can
//! be directly written to or read from a remote address space without
//! involving the target process". The prototype stopped at send-receive;
//! this module forward-ports the RDMA class onto QPIP the way the iWARP
//! lineage (of which QPIP is a precursor) later standardized it: a small
//! direct-data-placement shim above TCP.
//!
//! Framing is only present on QPs whose NIC enables
//! [`crate::NicConfig::rdma_framing`]; plain QPIP connections keep the
//! paper's zero-overhead encapsulation and wire compatibility.

use qpip_wire::error::ParseWireError;

/// Encoded frame header size.
pub const RDMA_FRAME_LEN: usize = 28;

/// Message class carried in a framed TCP segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RdmaOpcode {
    /// Ordinary send-receive payload (consumes a receive WR).
    Send,
    /// RDMA Write: place the payload at `offset` in the remote region.
    Write,
    /// RDMA Read request: ask for `len` bytes at `offset`.
    ReadRequest,
    /// RDMA Read response: the requested bytes.
    ReadResponse,
}

impl RdmaOpcode {
    fn code(self) -> u8 {
        match self {
            RdmaOpcode::Send => 0,
            RdmaOpcode::Write => 1,
            RdmaOpcode::ReadRequest => 2,
            RdmaOpcode::ReadResponse => 3,
        }
    }

    fn from_code(c: u8) -> Option<Self> {
        match c {
            0 => Some(RdmaOpcode::Send),
            1 => Some(RdmaOpcode::Write),
            2 => Some(RdmaOpcode::ReadRequest),
            3 => Some(RdmaOpcode::ReadResponse),
            _ => None,
        }
    }
}

/// The 28-byte frame prepended to every message on an RDMA-enabled QP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RdmaFrame {
    /// Message class.
    pub opcode: RdmaOpcode,
    /// Remote-region key (Write/Read*); 0 for Send.
    pub rkey: u32,
    /// Byte offset within the remote region (Write/Read*).
    pub offset: u64,
    /// Payload length (Write/ReadResponse) or requested length
    /// (ReadRequest).
    pub len: u32,
    /// Requester context echoed in read responses (the WR token).
    pub context: u64,
}

impl RdmaFrame {
    /// A plain send frame wrapping `len` payload bytes.
    pub fn send(len: u32) -> Self {
        RdmaFrame { opcode: RdmaOpcode::Send, rkey: 0, offset: 0, len, context: 0 }
    }

    /// Encodes to the 28-byte wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(RDMA_FRAME_LEN);
        b.push(self.opcode.code());
        b.extend_from_slice(&[0u8; 3]);
        b.extend_from_slice(&self.rkey.to_be_bytes());
        b.extend_from_slice(&self.offset.to_be_bytes());
        b.extend_from_slice(&self.len.to_be_bytes());
        b.extend_from_slice(&self.context.to_be_bytes());
        b
    }

    /// Decodes a frame from the front of a message, returning it and
    /// the payload that follows.
    ///
    /// # Errors
    ///
    /// [`ParseWireError::Truncated`] for short messages,
    /// [`ParseWireError::BadOption`] for unknown opcodes,
    /// [`ParseWireError::BadLength`] when the declared payload length
    /// disagrees with the message.
    pub fn parse(msg: &[u8]) -> Result<(RdmaFrame, &[u8]), ParseWireError> {
        if msg.len() < RDMA_FRAME_LEN {
            return Err(ParseWireError::Truncated { needed: RDMA_FRAME_LEN, have: msg.len() });
        }
        let opcode = RdmaOpcode::from_code(msg[0]).ok_or(ParseWireError::BadOption)?;
        let frame = RdmaFrame {
            opcode,
            rkey: u32::from_be_bytes(msg[4..8].try_into().expect("sized")),
            offset: u64::from_be_bytes(msg[8..16].try_into().expect("sized")),
            len: u32::from_be_bytes(msg[16..20].try_into().expect("sized")),
            context: u64::from_be_bytes(msg[20..28].try_into().expect("sized")),
        };
        let payload = &msg[RDMA_FRAME_LEN..];
        let expected = match opcode {
            RdmaOpcode::ReadRequest => 0,
            _ => frame.len as usize,
        };
        if payload.len() != expected {
            return Err(ParseWireError::BadLength);
        }
        Ok((frame, payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_frame_roundtrip() {
        let f = RdmaFrame::send(5);
        let mut msg = f.encode();
        msg.extend_from_slice(b"hello");
        let (back, payload) = RdmaFrame::parse(&msg).unwrap();
        assert_eq!(back, f);
        assert_eq!(payload, b"hello");
    }

    #[test]
    fn write_frame_roundtrip() {
        let f = RdmaFrame { opcode: RdmaOpcode::Write, rkey: 7, offset: 4096, len: 3, context: 99 };
        let mut msg = f.encode();
        msg.extend_from_slice(&[1, 2, 3]);
        let (back, payload) = RdmaFrame::parse(&msg).unwrap();
        assert_eq!(back, f);
        assert_eq!(payload, &[1, 2, 3]);
    }

    #[test]
    fn read_request_carries_no_payload() {
        let f = RdmaFrame {
            opcode: RdmaOpcode::ReadRequest,
            rkey: 1,
            offset: 0,
            len: 8192,
            context: 5,
        };
        let msg = f.encode();
        let (back, payload) = RdmaFrame::parse(&msg).unwrap();
        assert_eq!(back.len, 8192);
        assert!(payload.is_empty());
        // a read request with trailing bytes is malformed
        let mut bad = f.encode();
        bad.push(0);
        assert_eq!(RdmaFrame::parse(&bad), Err(ParseWireError::BadLength));
    }

    #[test]
    fn rejects_unknown_opcode_and_truncation() {
        let mut msg = RdmaFrame::send(0).encode();
        msg[0] = 9;
        assert_eq!(RdmaFrame::parse(&msg), Err(ParseWireError::BadOption));
        assert!(matches!(RdmaFrame::parse(&[0; 27]), Err(ParseWireError::Truncated { .. })));
    }

    #[test]
    fn length_mismatch_rejected() {
        let f = RdmaFrame::send(10);
        let mut msg = f.encode();
        msg.extend_from_slice(b"short");
        assert_eq!(RdmaFrame::parse(&msg), Err(ParseWireError::BadLength));
    }

    #[test]
    fn all_opcodes_roundtrip() {
        for op in
            [RdmaOpcode::Send, RdmaOpcode::Write, RdmaOpcode::ReadRequest, RdmaOpcode::ReadResponse]
        {
            assert_eq!(RdmaOpcode::from_code(op.code()), Some(op));
        }
    }
}
