//! Jumbo segments over a small wire MTU: the firmware's IPv6
//! end-to-end fragmentation path (§4.1), including loss of individual
//! fragments.

use std::collections::VecDeque;
use std::net::Ipv6Addr;

use qpip_netstack::types::Endpoint;
use qpip_nic::{CompletionKind, NicConfig, NicOutput, QpId, QpipNic, RecvWr, SendWr, ServiceType};
use qpip_sim::time::{SimDuration, SimTime};

fn addr(n: u16) -> Ipv6Addr {
    Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, n)
}

struct Pair {
    a: QpipNic,
    b: QpipNic,
    qa: QpId,
    qb: QpId,
    now: SimTime,
    wire: VecDeque<(bool, SimTime, qpip_wire::Packet)>,
    wire_sizes: Vec<usize>,
    drop_indices: Vec<usize>,
    sent: usize,
    comps_a: Vec<qpip_nic::Completion>,
    comps_b: Vec<qpip_nic::Completion>,
}

impl Pair {
    fn new(wire_mtu: usize) -> Pair {
        let cfg = NicConfig::fragmented(wire_mtu);
        let mut a = QpipNic::new(cfg.clone(), addr(1));
        let mut b = QpipNic::new(cfg, addr(2));
        let cqa = a.create_cq();
        let cqb = b.create_cq();
        let qa = a.create_qp(ServiceType::ReliableTcp, cqa, cqa).unwrap();
        let qb = b.create_qp(ServiceType::ReliableTcp, cqb, cqb).unwrap();
        Pair {
            a,
            b,
            qa,
            qb,
            now: SimTime::ZERO,
            wire: VecDeque::new(),
            wire_sizes: Vec::new(),
            drop_indices: Vec::new(),
            sent: 0,
            comps_a: Vec::new(),
            comps_b: Vec::new(),
        }
    }

    fn absorb(&mut self, from_a: bool, outs: Vec<NicOutput>) {
        for o in outs {
            match o {
                NicOutput::Transmit { at, bytes, .. } => {
                    self.wire_sizes.push(bytes.len());
                    let idx = self.sent;
                    self.sent += 1;
                    if self.drop_indices.contains(&idx) {
                        continue;
                    }
                    self.wire.push_back((from_a, at + SimDuration::from_micros(1), bytes));
                }
                NicOutput::Complete(_, c) => {
                    if from_a {
                        self.comps_a.push(c);
                    } else {
                        self.comps_b.push(c);
                    }
                }
            }
        }
    }

    fn run(&mut self) {
        let mut spins = 0;
        while let Some((from_a, at, bytes)) = self.wire.pop_front() {
            spins += 1;
            assert!(spins < 20_000);
            self.now = self.now.max(at);
            if from_a {
                let outs = self.b.on_packet(self.now, &bytes);
                self.absorb(false, outs);
            } else {
                let outs = self.a.on_packet(self.now, &bytes);
                self.absorb(true, outs);
            }
        }
    }

    fn fire_timers(&mut self) -> bool {
        let next = [self.a.next_deadline(), self.b.next_deadline()].into_iter().flatten().min();
        let Some(d) = next else { return false };
        self.now = self.now.max(d);
        let oa = self.a.on_timer(self.now);
        self.absorb(true, oa);
        let ob = self.b.on_timer(self.now);
        self.absorb(false, ob);
        self.run();
        true
    }

    fn establish(&mut self) {
        for i in 0..8 {
            let outs = self
                .b
                .post_recv(self.now, self.qb, RecvWr { wr_id: i, capacity: 16 * 1024 })
                .unwrap();
            self.absorb(false, outs);
        }
        self.b.tcp_listen(5000, self.qb).unwrap();
        let outs =
            self.a.tcp_connect(self.now, self.qa, 4000, Endpoint::new(addr(2), 5000)).unwrap();
        self.absorb(true, outs);
        self.run();
        assert!(self.comps_a.iter().any(|c| c.kind == CompletionKind::ConnectionEstablished));
    }

    fn received(&self) -> Vec<&Vec<u8>> {
        self.comps_b
            .iter()
            .filter_map(|c| match &c.kind {
                CompletionKind::Recv { data, .. } => Some(data),
                _ => None,
            })
            .collect()
    }
}

#[test]
fn jumbo_message_crosses_small_mtu_wire_in_fragments() {
    let mut p = Pair::new(1500);
    p.establish();
    let payload: Vec<u8> = (0..12_000).map(|i| (i % 253) as u8).collect();
    let outs =
        p.a.post_send(p.now, p.qa, SendWr { wr_id: 1, payload: payload.clone(), dst: None })
            .unwrap();
    p.absorb(true, outs);
    p.run();
    let got = p.received();
    assert_eq!(got.len(), 1, "one message, one completion");
    assert_eq!(got[0], &payload, "reassembled exactly");
    // the wire only ever saw MTU-sized packets
    assert!(p.wire_sizes.iter().all(|&s| s <= 1500), "{:?}", p.wire_sizes);
    // and the 12 KB segment needed several near-MTU fragments
    // (40 IP + 8 fragment header + 1448 payload = 1496 bytes each)
    assert!(p.wire_sizes.iter().filter(|&&s| s >= 1400).count() >= 7);
}

#[test]
fn fragment_loss_is_recovered_by_tcp_retransmission() {
    let mut p = Pair::new(1500);
    p.establish();
    // drop one mid-segment fragment of the upcoming send
    p.drop_indices = vec![p.sent + 3];
    let payload = vec![0xabu8; 12_000];
    let outs =
        p.a.post_send(p.now, p.qa, SendWr { wr_id: 9, payload: payload.clone(), dst: None })
            .unwrap();
    p.absorb(true, outs);
    p.run();
    assert!(p.received().is_empty(), "incomplete segment: nothing delivered");
    // the RTO retransmits the whole segment with a fresh fragment id
    // ("performance could suffer if subsequent IP fragments are lost")
    let mut rounds = 0;
    while p.received().is_empty() && rounds < 5 {
        rounds += 1;
        assert!(p.fire_timers(), "timers pending");
    }
    assert_eq!(p.received().len(), 1);
    assert_eq!(p.received()[0], &payload);
    assert!(p.a.retransmissions() >= 1);
}

#[test]
fn small_messages_on_fragmented_config_go_unfragmented() {
    let mut p = Pair::new(1500);
    p.establish();
    let before = p.wire_sizes.len();
    let outs =
        p.a.post_send(p.now, p.qa, SendWr { wr_id: 2, payload: vec![1; 400], dst: None }).unwrap();
    p.absorb(true, outs);
    p.run();
    assert_eq!(p.received().len(), 1);
    // the data segment itself fit the MTU: exactly one data packet plus
    // its ACK-path traffic, no fragments
    assert!(p.wire_sizes[before..].iter().all(|&s| s <= 1500));
}

#[test]
fn many_jumbo_messages_stream_reliably() {
    let mut p = Pair::new(1500);
    p.establish();
    let mut expected = Vec::new();
    for i in 0..6u64 {
        let payload = vec![i as u8; 10_000];
        expected.push(payload.clone());
        let outs = p.a.post_send(p.now, p.qa, SendWr { wr_id: i, payload, dst: None }).unwrap();
        p.absorb(true, outs);
        p.run();
        p.fire_timers();
    }
    let got = p.received();
    assert_eq!(got.len(), 6);
    for (g, e) in got.iter().zip(&expected) {
        assert_eq!(g, &e);
    }
}
