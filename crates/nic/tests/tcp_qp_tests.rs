//! Two QPIP NICs wired back to back: TCP queue-pair lifecycle at the
//! firmware level (connection mating, message exchange, completions,
//! window semantics from posted receive WRs).

use std::collections::VecDeque;
use std::net::Ipv6Addr;

use qpip_netstack::types::Endpoint;
use qpip_nic::{
    Completion, CompletionKind, CompletionStatus, CqId, NicConfig, NicOutput, QpId, QpipNic,
    RecvWr, SendWr, ServiceType,
};
use qpip_sim::time::{SimDuration, SimTime};

fn addr(n: u16) -> Ipv6Addr {
    Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, n)
}

struct Pair {
    a: QpipNic,
    b: QpipNic,
    qa: QpId,
    qb: QpId,
    now: SimTime,
    wire: VecDeque<(bool, SimTime, qpip_wire::Packet)>,
    comps_a: Vec<(CqId, Completion)>,
    comps_b: Vec<(CqId, Completion)>,
}

impl Pair {
    fn new(cfg: NicConfig) -> Pair {
        let mut a = QpipNic::new(cfg.clone(), addr(1));
        let mut b = QpipNic::new(cfg, addr(2));
        let cqa = a.create_cq();
        let cqb = b.create_cq();
        let qa = a.create_qp(ServiceType::ReliableTcp, cqa, cqa).unwrap();
        let qb = b.create_qp(ServiceType::ReliableTcp, cqb, cqb).unwrap();
        Pair {
            a,
            b,
            qa,
            qb,
            now: SimTime::ZERO,
            wire: VecDeque::new(),
            comps_a: Vec::new(),
            comps_b: Vec::new(),
        }
    }

    fn absorb(&mut self, from_a: bool, outs: Vec<NicOutput>) {
        for o in outs {
            match o {
                NicOutput::Transmit { at, bytes, .. } => {
                    // fixed small wire latency
                    self.wire.push_back((from_a, at + SimDuration::from_micros(1), bytes));
                }
                NicOutput::Complete(cq, c) => {
                    if from_a {
                        self.comps_a.push((cq, c));
                    } else {
                        self.comps_b.push((cq, c));
                    }
                }
            }
        }
    }

    fn run(&mut self) {
        let mut spins = 0;
        while let Some((from_a, at, bytes)) = self.wire.pop_front() {
            spins += 1;
            assert!(spins < 10_000, "wire did not quiesce");
            self.now = self.now.max(at);
            if from_a {
                let outs = self.b.on_packet(self.now, &bytes);
                self.absorb(false, outs);
            } else {
                let outs = self.a.on_packet(self.now, &bytes);
                self.absorb(true, outs);
            }
        }
    }

    fn fire_timers(&mut self) -> bool {
        let next = [self.a.next_deadline(), self.b.next_deadline()].into_iter().flatten().min();
        let Some(d) = next else { return false };
        self.now = self.now.max(d);
        let oa = self.a.on_timer(self.now);
        self.absorb(true, oa);
        let ob = self.b.on_timer(self.now);
        self.absorb(false, ob);
        self.run();
        true
    }

    /// Server listens, both sides post receives, client connects.
    fn establish(&mut self, recv_posts: usize, capacity: usize) {
        for i in 0..recv_posts {
            let outs = self
                .b
                .post_recv(self.now, self.qb, RecvWr { wr_id: 100 + i as u64, capacity })
                .unwrap();
            self.absorb(false, outs);
            let outs = self
                .a
                .post_recv(self.now, self.qa, RecvWr { wr_id: 200 + i as u64, capacity })
                .unwrap();
            self.absorb(true, outs);
        }
        self.b.tcp_listen(5000, self.qb).unwrap();
        let outs =
            self.a.tcp_connect(self.now, self.qa, 4000, Endpoint::new(addr(2), 5000)).unwrap();
        self.absorb(true, outs);
        self.run();
        assert!(
            self.comps_a.iter().any(|(_, c)| c.kind == CompletionKind::ConnectionEstablished),
            "client saw establishment"
        );
        assert!(
            self.comps_b.iter().any(|(_, c)| c.kind == CompletionKind::ConnectionEstablished),
            "server QP was mated"
        );
    }
}

#[test]
fn connection_mates_to_idle_qp() {
    let mut p = Pair::new(NicConfig::paper_default());
    p.establish(4, 16 * 1024);
}

#[test]
fn message_exchange_with_completions_both_sides() {
    let mut p = Pair::new(NicConfig::paper_default());
    p.establish(8, 16 * 1024);
    let outs =
        p.a.post_send(p.now, p.qa, SendWr { wr_id: 7, payload: vec![0xaa; 4096], dst: None })
            .unwrap();
    p.absorb(true, outs);
    p.run();
    // receiver got the message into the first posted WR
    let recv = p
        .comps_b
        .iter()
        .find_map(|(_, c)| match &c.kind {
            CompletionKind::Recv { data, .. } => Some((c.wr_id, data.clone())),
            _ => None,
        })
        .expect("receive completion");
    assert_eq!(recv, (100, vec![0xaa; 4096]));
    // sender's WR completes when the data is acknowledged (§3); a lone
    // segment is acknowledged by the delayed-ACK timer
    p.fire_timers();
    let send_done = p.comps_a.iter().any(|(_, c)| c.kind == CompletionKind::Send && c.wr_id == 7);
    assert!(send_done);
}

#[test]
fn messages_consume_receive_wrs_in_order() {
    let mut p = Pair::new(NicConfig::paper_default());
    p.establish(4, 16 * 1024);
    for (i, len) in [100usize, 200, 300].iter().enumerate() {
        let outs =
            p.a.post_send(
                p.now,
                p.qa,
                SendWr { wr_id: i as u64, payload: vec![i as u8; *len], dst: None },
            )
            .unwrap();
        p.absorb(true, outs);
        p.run();
    }
    let recvs: Vec<(u64, usize)> = p
        .comps_b
        .iter()
        .filter_map(|(_, c)| match &c.kind {
            CompletionKind::Recv { data, .. } => Some((c.wr_id, data.len())),
            _ => None,
        })
        .collect();
    assert_eq!(recvs, vec![(100, 100), (101, 200), (102, 300)]);
}

#[test]
fn sender_blocks_until_receiver_posts_buffers() {
    let mut p = Pair::new(NicConfig::paper_default());
    // server posts NO receives: its advertised window is zero
    p.b.tcp_listen(5000, p.qb).unwrap();
    let outs = p.a.tcp_connect(p.now, p.qa, 4000, Endpoint::new(addr(2), 5000)).unwrap();
    p.absorb(true, outs);
    p.run();
    // client sends a message: it must NOT reach the receiver yet
    let outs =
        p.a.post_send(p.now, p.qa, SendWr { wr_id: 1, payload: vec![1; 1024], dst: None }).unwrap();
    p.absorb(true, outs);
    p.run();
    let got_data = p.comps_b.iter().any(|(_, c)| matches!(c.kind, CompletionKind::Recv { .. }));
    assert!(!got_data, "no receive space posted: transfer must stall");
    // server posts a buffer: the window update releases the message
    let outs = p.b.post_recv(p.now, p.qb, RecvWr { wr_id: 100, capacity: 16 * 1024 }).unwrap();
    p.absorb(false, outs);
    p.run();
    // allow a retransmit timer in case the update raced
    for _ in 0..4 {
        if p.comps_b.iter().any(|(_, c)| matches!(c.kind, CompletionKind::Recv { .. })) {
            break;
        }
        p.fire_timers();
    }
    let got_data = p.comps_b.iter().any(|(_, c)| matches!(c.kind, CompletionKind::Recv { .. }));
    assert!(got_data, "posting receive space unblocked the sender (§5.1)");
}

#[test]
fn completion_timestamps_are_monotone_and_positive() {
    let mut p = Pair::new(NicConfig::paper_default());
    p.establish(4, 16 * 1024);
    let outs =
        p.a.post_send(p.now, p.qa, SendWr { wr_id: 1, payload: vec![0; 512], dst: None }).unwrap();
    p.absorb(true, outs);
    p.run();
    let mut last = SimTime::ZERO;
    for (_, c) in p.comps_b.iter() {
        assert!(c.visible_at >= last);
        last = c.visible_at;
    }
    assert!(last > SimTime::ZERO);
}

#[test]
fn all_completions_are_success_in_clean_run() {
    let mut p = Pair::new(NicConfig::paper_default());
    p.establish(6, 16 * 1024);
    for i in 0..5u64 {
        let outs =
            p.a.post_send(p.now, p.qa, SendWr { wr_id: i, payload: vec![0; 2048], dst: None })
                .unwrap();
        p.absorb(true, outs);
        p.run();
    }
    for (_, c) in p.comps_a.iter().chain(p.comps_b.iter()) {
        assert_eq!(c.status, CompletionStatus::Success, "{c:?}");
    }
    assert_eq!(p.a.retransmissions(), 0);
}

#[test]
fn ping_pong_rtt_is_in_the_tens_of_microseconds() {
    // sanity check of the latency envelope before full Figure 3 runs:
    // one 1-byte message each way over an idle 1 µs wire.
    let mut p = Pair::new(NicConfig::paper_default());
    p.establish(8, 16 * 1024);
    let t0 = p.now;
    let outs =
        p.a.post_send(p.now, p.qa, SendWr { wr_id: 50, payload: vec![1], dst: None }).unwrap();
    p.absorb(true, outs);
    p.run();
    // b echoes
    let outs =
        p.b.post_send(p.now, p.qb, SendWr { wr_id: 60, payload: vec![1], dst: None }).unwrap();
    p.absorb(false, outs);
    p.run();
    let echo_at = p
        .comps_a
        .iter()
        .find_map(|(_, c)| match &c.kind {
            CompletionKind::Recv { .. } => Some(c.visible_at),
            _ => None,
        })
        .expect("echo delivered");
    let rtt = echo_at.duration_since(t0).as_micros_f64();
    assert!((40.0..200.0).contains(&rtt), "QP-to-QP TCP rtt {rtt} µs outside plausible envelope");
}

/// Regression: when a post_recv's buffer is immediately consumed by a
/// backlogged message, the advertised window must reflect the space
/// *after* the drain — not count the just-consumed WR (§5.1's invariant
/// that the window equals posted receive space).
#[test]
fn window_after_backlog_drain_reflects_real_posted_space() {
    let mut p = Pair::new(NicConfig::paper_default());
    // server posts nothing; client connects and sends two messages
    p.b.tcp_listen(5000, p.qb).unwrap();
    let outs = p.a.tcp_connect(p.now, p.qa, 4000, Endpoint::new(addr(2), 5000)).unwrap();
    p.absorb(true, outs);
    p.run();
    let outs =
        p.a.post_send(p.now, p.qa, SendWr { wr_id: 1, payload: vec![1; 1024], dst: None }).unwrap();
    p.absorb(true, outs);
    p.run();
    // nothing posted: message stalls (window 0) or backlogs
    // post ONE buffer: it must deliver exactly one message, and the
    // window afterwards must be zero again, so a second send stalls
    let outs = p.b.post_recv(p.now, p.qb, RecvWr { wr_id: 100, capacity: 2048 }).unwrap();
    p.absorb(false, outs);
    p.run();
    for _ in 0..4 {
        if p.comps_b.iter().any(|(_, c)| matches!(c.kind, CompletionKind::Recv { .. })) {
            break;
        }
        p.fire_timers();
    }
    let recvs =
        p.comps_b.iter().filter(|(_, c)| matches!(c.kind, CompletionKind::Recv { .. })).count();
    assert_eq!(recvs, 1);
    // second message: no buffer is posted, so it must NOT be delivered
    let outs =
        p.a.post_send(p.now, p.qa, SendWr { wr_id: 2, payload: vec![2; 1024], dst: None }).unwrap();
    p.absorb(true, outs);
    p.run();
    p.fire_timers();
    let recvs =
        p.comps_b.iter().filter(|(_, c)| matches!(c.kind, CompletionKind::Recv { .. })).count();
    assert_eq!(recvs, 1, "no second delivery without posted space");
    // backlog is bounded by the (now correct) window: at most one
    // message can be in flight/backlogged beyond the posted space
    assert!(p.b.stats().tcp_backlogged <= 2, "{:?}", p.b.stats());
}
