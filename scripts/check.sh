#!/usr/bin/env bash
# One-command CI gate: build, test, lint, format.
#
# Everything runs against the whole workspace; clippy treats warnings
# as errors so new code cannot regress the lint baseline, and rustfmt
# enforces the style pinned in rustfmt.toml.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "All checks passed."
