#!/usr/bin/env bash
# One-command CI gate: build, test, lint, format.
#
# Everything runs against the whole workspace; clippy treats warnings
# as errors so new code cannot regress the lint baseline, and rustfmt
# enforces the style pinned in rustfmt.toml.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace (bins + examples)"
cargo build --release --workspace
cargo build --release --workspace --examples

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

# Smoke-run every experiment binary: each must exit cleanly and report
# zero [MISS] shape checks. fig7_nbd without --full and manyflow with
# --smoke are the quick configurations; the rest are already fast.
for bin in fig3_rtt fig4_throughput table1_overhead tables23_occupancy fig7_nbd; do
    echo "==> smoke: $bin"
    out="$(./target/release/$bin)"
    if grep -q '\[MISS\]' <<<"$out"; then
        echo "$out"
        echo "FAIL: $bin reported a missed shape check"
        exit 1
    fi
done
echo "==> smoke: manyflow --smoke"
out="$(./target/release/manyflow --smoke)"
if grep -q '\[MISS\]' <<<"$out"; then
    echo "$out"
    echo "FAIL: manyflow reported a missed shape check"
    exit 1
fi

# Live-socket smoke runs. These open real UDP sockets on 127.0.0.1 and
# block on them, so unlike the deterministic binaries above a bug can
# hang rather than fail — a hard timeout turns a hang into a failure.
echo "==> smoke: xport_ttcp --smoke (120s timeout)"
out="$(timeout 120 ./target/release/xport_ttcp --smoke)" || {
    echo "$out"
    echo "FAIL: xport_ttcp --smoke failed or timed out"
    exit 1
}
if grep -q '\[MISS\]' <<<"$out"; then
    echo "$out"
    echo "FAIL: xport_ttcp reported a missed shape check"
    exit 1
fi

echo "==> smoke: live_node example (60s timeout)"
timeout 60 ./target/release/examples/live_node >/dev/null || {
    echo "FAIL: live_node example failed or timed out"
    exit 1
}

# Flight-recorder smoke: capture a deterministic DES trace from the
# Figure 3 workload and make sure the qpip-trace CLI digests it into a
# non-empty per-connection summary.
echo "==> smoke: fig3_rtt --trace + qpip-trace CLI"
trace_file="$(mktemp)"
./target/release/fig3_rtt --trace "$trace_file" >/dev/null
summary="$(./target/release/qpip-trace "$trace_file")"
rm -f "$trace_file"
if [[ -z "$summary" ]] || ! grep -q 'events across' <<<"$summary"; then
    echo "$summary"
    echo "FAIL: qpip-trace produced no summary"
    exit 1
fi

# Conformance: the scripted suite runs as part of `cargo test` above;
# here the deterministic fuzzer gets a fixed-seed smoke pass. 10k cases
# take a few seconds in release; the hard timeout turns a fuzzer hang
# (a stuck engine is a finding too) into a failure. Any invariant
# violation prints the minimized script and a --case replay line.
echo "==> smoke: conform_fuzz --seed 0xfeedbeef --iters 10000 (120s timeout)"
timeout 120 ./target/release/conform_fuzz --seed 0xfeedbeef --iters 10000 || {
    echo "FAIL: conform_fuzz smoke failed or timed out"
    exit 1
}

# Tracing must stay off the hot path: with no recorder installed the
# wire_hotpath speedups have to hold well above the noise floor of the
# values recorded when the zero-copy datapath PR landed (the speedups
# are self-normalized — current vs baseline measured in the same run —
# so they are machine-independent; the floors sit at ~60% of the
# recorded values to absorb CI noise).
echo "==> guard: wire_hotpath speedups vs datapath-PR floors"
bench_out="$(cargo bench -p qpip-bench --bench wire_hotpath 2>/dev/null)"
if ! awk '
    BEGIN {
        floors["checksum/1500"] = 2.0
        floors["checksum/9000"] = 2.5
        floors["udp_encode_decode/8928"] = 2.0
        floors["tcp_encode_decode/8928"] = 2.0
        floors["des_timer_churn_10mb_ttcp"] = 1.5
    }
    /->/ {
        name = $1; speedup = $NF; sub(/x$/, "", speedup)
        if ((name in floors) && speedup + 0 < floors[name]) {
            printf "  %s speedup %.2fx below floor %.2fx\n", name, speedup, floors[name]
            bad = 1
        }
    }
    END { exit bad }
' <<<"$bench_out"; then
    echo "$bench_out"
    echo "FAIL: wire_hotpath regressed against the datapath-PR baseline"
    exit 1
fi

echo "All checks passed."
