//! The RDMA transaction class (§2.1): "data can be directly written to
//! or read from a remote address space without involving the target
//! process." The prototype implemented only send-receive; this extension
//! forward-ports RDMA onto QPIP the way the iWARP lineage — of which
//! QPIP is a precursor — later standardized it.
//!
//! Run with: `cargo run --example rdma_remote_memory`

use qpip::world::QpipWorld;
use qpip::{CompletionKind, NicConfig, RdmaReadWr, RdmaWriteWr, RecvWr, SendWr, ServiceType};
use qpip_netstack::types::Endpoint;

fn main() {
    let mut w = QpipWorld::myrinet();
    let client = w.add_node(NicConfig::with_rdma());
    let server = w.add_node(NicConfig::with_rdma());
    let cqc = w.create_cq(client);
    let cqs = w.create_cq(server);
    let qc = w.create_qp(client, ServiceType::ReliableTcp, cqc, cqc).unwrap();
    let qs = w.create_qp(server, ServiceType::ReliableTcp, cqs, cqs).unwrap();
    for i in 0..4 {
        w.post_recv(client, qc, RecvWr { wr_id: i, capacity: 16 * 1024 }).unwrap();
        w.post_recv(server, qs, RecvWr { wr_id: i, capacity: 16 * 1024 }).unwrap();
    }
    w.tcp_listen(server, 5000, qs).unwrap();
    w.tcp_connect(client, qc, 4000, Endpoint::new(w.addr(server), 5000)).unwrap();
    w.wait_matching(client, cqc, |c| c.kind == CompletionKind::ConnectionEstablished);
    w.wait_matching(server, cqs, |c| c.kind == CompletionKind::ConnectionEstablished);

    // The server registers a region and advertises its key in-band —
    // "both processes must exchange information regarding their
    // registered buffers using some out-of-band mechanism such as a
    // send-receive operation" (§2.1).
    let region = w.register_mr(server, 64 * 1024);
    w.mr_write(server, region, 0, b"server-resident data, readable remotely");
    w.post_send(
        server,
        qs,
        SendWr { wr_id: 1, payload: region.0.to_be_bytes().to_vec(), dst: None },
    )
    .unwrap();
    let c = w.wait_matching(client, cqc, |c| matches!(c.kind, CompletionKind::Recv { .. }));
    let CompletionKind::Recv { data, .. } = c.kind else { unreachable!() };
    let rkey = qpip::MrKey(u32::from_be_bytes(data[..4].try_into().unwrap()));
    println!("client learned remote region key {rkey} via send-receive");

    // RDMA Read: pull the server's bytes without its involvement.
    w.post_rdma_read(client, qc, RdmaReadWr { wr_id: 2, len: 40, rkey, remote_offset: 0 }).unwrap();
    let c = w.wait_matching(client, cqc, |c| matches!(c.kind, CompletionKind::RdmaRead { .. }));
    if let CompletionKind::RdmaRead { data } = c.kind {
        println!("RDMA Read returned: {:?}", String::from_utf8_lossy(&data));
    }

    // RDMA Write: push bytes straight into the server's memory.
    let t0 = w.app_time(client);
    w.post_rdma_write(
        client,
        qc,
        RdmaWriteWr {
            wr_id: 3,
            data: b"written by the client, no server cycles spent".to_vec(),
            rkey,
            remote_offset: 1024,
        },
    )
    .unwrap();
    let c = w.wait_matching(client, cqc, |c| c.kind == CompletionKind::RdmaWrite);
    let elapsed = w.app_time(client).duration_since(t0);
    assert_eq!(c.wr_id, 3);
    println!(
        "RDMA Write of 46 bytes completed (acknowledged) in {elapsed}; server memory now holds: {:?}",
        String::from_utf8_lossy(&w.mr_read(server, region, 1024, 46))
    );
    println!(
        "server application CPU spent on these transfers: {} cycles (one-sided!)",
        w.cpu(server).cycles(qpip_host::WorkClass::Verbs)
            - 5 * qpip_sim::params::qpip_post_cycles() // setup posts
    );
}
