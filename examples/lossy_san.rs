//! TCP recovery on a lossy SAN: the paper assumes "packet loss or
//! reordering seldom occurs" (§4.1) but keeps full TCP reliability in
//! the firmware. This demo injects random loss into the Myrinet fabric
//! and shows the offloaded stack recovering transparently — the
//! application only sees completions.
//!
//! Run with: `cargo run --example lossy_san`

use qpip::world::QpipWorld;
use qpip::{CompletionKind, NicConfig, RecvWr, SendWr, ServiceType};
use qpip_fabric::FaultPlan;
use qpip_netstack::types::Endpoint;

fn main() {
    let mut world = QpipWorld::myrinet();
    let a = world.add_node(NicConfig::paper_default());
    let b = world.add_node(NicConfig::paper_default());
    let cqa = world.create_cq(a);
    let cqb = world.create_cq(b);
    let qa = world.create_qp(a, ServiceType::ReliableTcp, cqa, cqa).unwrap();
    let qb = world.create_qp(b, ServiceType::ReliableTcp, cqb, cqb).unwrap();
    for i in 0..16 {
        world.post_recv(b, qb, RecvWr { wr_id: i, capacity: 8 * 1024 }).unwrap();
        world.post_recv(a, qa, RecvWr { wr_id: i, capacity: 8 * 1024 }).unwrap();
    }
    world.tcp_listen(b, 5000, qb).unwrap();
    let dst = Endpoint::new(world.addr(b), 5000);
    world.tcp_connect(a, qa, 4000, dst).unwrap();
    world.wait_matching(a, cqa, |c| c.kind == CompletionKind::ConnectionEstablished);
    world.wait_matching(b, cqb, |c| c.kind == CompletionKind::ConnectionEstablished);
    println!("connected; now injecting 5% random loss into the fabric\n");
    world.set_fault_plan(FaultPlan::DropRandom { permille: 50, seed: 7 });

    let messages = 60u64;
    let t0 = world.app_time(a);
    for i in 0..messages {
        world.post_recv(b, qb, RecvWr { wr_id: 100 + i, capacity: 8 * 1024 }).unwrap();
        world
            .post_send(a, qa, SendWr { wr_id: i, payload: vec![i as u8; 4096], dst: None })
            .unwrap();
        let c = world.wait_matching(b, cqb, |c| matches!(c.kind, CompletionKind::Recv { .. }));
        if let CompletionKind::Recv { data, .. } = &c.kind {
            assert_eq!(data.len(), 4096);
            assert!(data.iter().all(|&x| x == i as u8), "payload intact");
        }
    }
    let elapsed = world.app_time(a).duration_since(t0);

    println!("delivered {} x 4 KB messages, every byte intact", messages);
    println!("elapsed (simulated): {:.2} ms", elapsed.as_secs_f64() * 1e3);
    println!(
        "fabric dropped {} packets; the NIC's TCP retransmitted {} segments",
        world.fabric().injected_drops(),
        world.nic(a).retransmissions() + world.nic(b).retransmissions(),
    );
    println!("the application never noticed: reliability lives below the QP.");
}
