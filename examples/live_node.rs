//! Two live nodes on 127.0.0.1: the DES protocol engine driving real
//! UDP sockets through `qpip-xport`, first over a clean wire and then
//! through the deterministic impairment proxy at 2% loss + reordering.
//!
//! The exact same `qpip-netstack` engine that powers the Figures 3–7
//! simulations produces every byte on the wire here — `XportNode` only
//! swaps the discrete-event scheduler for a wall clock and a
//! nonblocking socket.
//!
//! Run with: `cargo run --example live_node`

use std::net::Ipv6Addr;
use std::time::{Duration, Instant};

use qpip_netstack::types::Endpoint;
use qpip_nic::types::{CompletionKind, CompletionStatus, RecvWr, SendWr, ServiceType};
use qpip_xport::{ImpairConfig, ImpairProxy, XportConfig, XportNode};

const FABRIC_A: Ipv6Addr = Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, 1);
const FABRIC_B: Ipv6Addr = Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, 2);
const PORT: u16 = 5001;
const MESSAGES: u32 = 64;
const LEN: usize = 2048;

fn message(seq: u32, len: usize) -> Vec<u8> {
    let mut m = Vec::with_capacity(len);
    m.extend_from_slice(&seq.to_be_bytes());
    m.extend((4..len).map(|i| (seq as usize).wrapping_mul(31).wrapping_add(i) as u8));
    m
}

/// Server half: listen, keep receive WRs posted, collect `MESSAGES`
/// messages and verify each arrived exactly once and in order.
fn run_server(mut server: XportNode) -> u32 {
    let cq = server.create_cq();
    let qp = server.create_qp(ServiceType::ReliableTcp, cq, cq).unwrap();
    server.tcp_listen(qp, PORT).unwrap();
    for i in 0..64u32 {
        server.post_recv(qp, RecvWr { wr_id: u64::from(i), capacity: LEN }).unwrap();
    }
    let mut got = 0u32;
    loop {
        let c = server.wait(cq).expect("server completion");
        match c.kind {
            CompletionKind::ConnectionEstablished => {}
            CompletionKind::Recv { data, .. } => {
                assert_eq!(c.status, CompletionStatus::Success);
                assert_eq!(data, message(got, LEN), "message {got} corrupted or misordered");
                got += 1;
                if got == MESSAGES {
                    break;
                }
                server.post_recv(qp, RecvWr { wr_id: 0, capacity: LEN }).unwrap();
            }
            other => panic!("unexpected completion {other:?}"),
        }
    }
    let _ = server.tcp_close(qp);
    let until = Instant::now() + Duration::from_millis(200);
    while Instant::now() < until {
        server.pump(Duration::from_millis(10)).unwrap();
    }
    got
}

/// Client half: connect, stream `MESSAGES` messages with at most 16 in
/// flight, report wall time and how many retransmissions the engine's
/// loss recovery issued.
fn run_client(mut client: XportNode) -> (Duration, u64) {
    let cq_conn = client.create_cq();
    let cq_send = client.create_cq();
    let qp = client.create_qp(ServiceType::ReliableTcp, cq_send, cq_conn).unwrap();
    client.tcp_connect(qp, 5000, Endpoint::new(FABRIC_B, PORT)).unwrap();
    let c = client.wait(cq_conn).expect("connection established");
    assert_eq!(c.kind, CompletionKind::ConnectionEstablished);

    let t0 = Instant::now();
    let (mut next, mut inflight, mut completed) = (0u32, 0u32, 0u32);
    while completed < MESSAGES {
        while next < MESSAGES && inflight < 16 {
            client
                .post_send(
                    qp,
                    SendWr { wr_id: u64::from(next), payload: message(next, LEN), dst: None },
                )
                .unwrap();
            next += 1;
            inflight += 1;
        }
        let done = client.wait(cq_send).expect("send completion");
        assert_eq!(done.status, CompletionStatus::Success);
        inflight -= 1;
        completed += 1;
    }
    let elapsed = t0.elapsed();
    // sample before close: per-connection counters die with the TCB
    let retrans = client.engine().retransmissions();
    client.tcp_close(qp).unwrap();
    let until = Instant::now() + Duration::from_millis(200);
    while Instant::now() < until {
        client.pump(Duration::from_millis(10)).unwrap();
    }
    (elapsed, retrans)
}

/// One transfer with the sockets already wired (directly or through a
/// proxy); returns (wall time, client retransmissions).
fn run_pair(client: XportNode, server: XportNode) -> (Duration, u64) {
    let server_thread = std::thread::spawn(move || run_server(server));
    let result = run_client(client);
    let got = server_thread.join().expect("server thread");
    assert_eq!(got, MESSAGES);
    result
}

fn main() {
    let kb = (u64::from(MESSAGES) * LEN as u64) / 1024;
    println!("live two-node transfer: {MESSAGES} x {LEN} B ({kb} KiB) over 127.0.0.1\n");

    // Pass 1: clean wire, node A talks straight to node B.
    let mut a = XportNode::bind(FABRIC_A, XportConfig::default()).expect("bind node A");
    let mut b = XportNode::bind(FABRIC_B, XportConfig::default()).expect("bind node B");
    a.add_peer(FABRIC_B, b.local_addr().unwrap());
    b.add_peer(FABRIC_A, a.local_addr().unwrap());
    let (wall, retrans) = run_pair(a, b);
    println!(
        "  clean wire     : delivered in-order in {:6.1} ms, {} retransmissions",
        wall.as_secs_f64() * 1e3,
        retrans
    );

    // Pass 2: same engine, but every datagram now crosses the
    // impairment proxy — 2% dropped, 3% held back for reordering.
    let mut a = XportNode::bind(FABRIC_A, XportConfig::default()).expect("bind node A");
    let mut b = XportNode::bind(FABRIC_B, XportConfig::default()).expect("bind node B");
    let proxy = ImpairProxy::new(ImpairConfig {
        seed: 42,
        drop_per_mille: 20,
        reorder_per_mille: 30,
        hold_at_most: Duration::from_millis(10),
    })
    .route(FABRIC_A, a.local_addr().unwrap())
    .route(FABRIC_B, b.local_addr().unwrap())
    .spawn()
    .expect("spawn impairment proxy");
    a.add_peer(FABRIC_B, proxy.addr());
    b.add_peer(FABRIC_A, proxy.addr());
    let (wall, retrans) = run_pair(a, b);
    let stats = proxy.stats();
    println!(
        "  2% loss proxy  : delivered in-order in {:6.1} ms, {} retransmissions \
         ({} datagrams dropped, {} reordered)",
        wall.as_secs_f64() * 1e3,
        retrans,
        stats.dropped,
        stats.reordered
    );

    println!("\nboth transfers exactly-once, in-order — the engine's TCP, not the wire,");
    println!("provides reliability (the DES worlds remain byte-identical; see DESIGN.md §12)");
}
