//! ttcp across all three implementations — the workload behind
//! Figure 4, runnable as a demo with a smaller transfer.
//!
//! Run with: `cargo run --release --example ttcp_compare`

use qpip::NicConfig;
use qpip_bench::workloads::pingpong::Baseline;
use qpip_bench::workloads::ttcp::{qpip_ttcp, socket_ttcp, TtcpResult};

fn show(name: &str, r: &TtcpResult) {
    println!(
        "{name:<22} {:>7.1} MB/s   sender CPU {:>5.1}%   receiver CPU {:>5.1}%   ({:.3}s simulated)",
        r.mbytes_per_sec,
        r.sender_cpu * 100.0,
        r.receiver_cpu * 100.0,
        r.elapsed_s
    );
}

fn main() {
    let total = 4 * 1024 * 1024; // 4 MB keeps the demo quick
    let chunk = 16 * 1024;
    println!("ttcp: {total} bytes in 16 KB writes, TCP_NODELAY (§4.2.1)\n");

    show("IP over GigE", &socket_ttcp(Baseline::GigE, total, chunk));
    show("IP over Myrinet/GM", &socket_ttcp(Baseline::GmMyrinet, total, chunk));
    show("QPIP (native 16K)", &qpip_ttcp(NicConfig::paper_default(), total, chunk));
    show(
        "QPIP (1500 MTU)",
        &qpip_ttcp(NicConfig { mtu: 1500, ..NicConfig::paper_default() }, total, chunk),
    );
    show("QPIP (fw checksum)", &qpip_ttcp(NicConfig::firmware_checksum(), total, chunk));

    println!("\nThe shape of Figure 4: QPIP matches or beats the host stacks at");
    println!("a tiny fraction of the host CPU — the stack lives in the NIC.");
}
