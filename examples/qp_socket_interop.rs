//! QP-to-socket interoperability (§3): "Communication can occur between
//! QPIP applications or QPIP and traditional (socket) systems" — because
//! QPIP adds **no new protocol formats**, a queue-pair endpoint and a
//! plain socket endpoint speak the same TCP on the wire.
//!
//! This demo wires the two protocol engines back to back at the packet
//! level: a message-per-segment QPIP engine on one side, a conventional
//! byte-stream socket engine on the other.
//!
//! Run with: `cargo run --example qp_socket_interop`

use std::collections::VecDeque;
use std::net::Ipv6Addr;

use qpip_netstack::engine::Engine;
use qpip_netstack::types::{Emit, Endpoint, NetConfig, SendToken};
use qpip_sim::time::{SimDuration, SimTime};

fn addr(n: u16) -> Ipv6Addr {
    Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, n)
}

fn main() {
    // The QP side maps one message onto one TCP segment (§4.1); the
    // socket side is an ordinary streaming stack. Same wire format.
    let mut qp_side = Engine::new(NetConfig::qpip(9000), addr(1));
    let mut sock_side = Engine::new(NetConfig::host(9000), addr(2));
    let mut now = SimTime::ZERO;
    let mut wire: VecDeque<(bool, qpip_wire::Packet)> = VecDeque::new();
    let mut from_qp: Vec<Vec<u8>> = Vec::new();
    let mut from_sock: Vec<u8> = Vec::new();

    sock_side.tcp_listen(80).unwrap();
    let (conn, emits) = qp_side.tcp_connect(now, 7000, Endpoint::new(addr(2), 80));
    let absorb = |to_sock: bool,
                  emits: Vec<Emit>,
                  wire: &mut VecDeque<(bool, qpip_wire::Packet)>,
                  from_qp: &mut Vec<Vec<u8>>,
                  from_sock: &mut Vec<u8>| {
        for e in emits {
            match e {
                Emit::Packet(p) => wire.push_back((to_sock, p.bytes)),
                Emit::TcpDelivered { data, .. } => {
                    if to_sock {
                        // events produced by the QP side
                        from_sock.extend(data);
                    } else {
                        from_qp.push(data);
                    }
                }
                Emit::TcpAccepted { peer, .. } => {
                    println!("socket side accepted a connection from {peer}");
                }
                Emit::TcpConnected { .. } => println!("QP side connected"),
                _ => {}
            }
        }
    };
    absorb(true, emits, &mut wire, &mut from_qp, &mut from_sock);

    let pump = |qp_side: &mut Engine,
                sock_side: &mut Engine,
                now: &mut SimTime,
                wire: &mut VecDeque<(bool, qpip_wire::Packet)>,
                from_qp: &mut Vec<Vec<u8>>,
                _from_sock: &mut Vec<u8>| {
        while let Some((to_sock, bytes)) = wire.pop_front() {
            *now += SimDuration::from_micros(5);
            let emits = if to_sock {
                sock_side.on_packet(*now, &bytes)
            } else {
                qp_side.on_packet(*now, &bytes)
            };
            // emits from the sock side go back toward the QP side
            for e in emits {
                match e {
                    Emit::Packet(p) => wire.push_back((!to_sock, p.bytes)),
                    Emit::TcpDelivered { data, .. } => {
                        if to_sock {
                            from_qp.push(data); // delivered at sock side
                        } else {
                            // delivered at QP side: one event per message
                            println!(
                                "QP side delivered a {}-byte message (boundary preserved)",
                                data.len()
                            );
                        }
                    }
                    Emit::TcpAccepted { peer, .. } => {
                        println!("socket side accepted a connection from {peer}");
                    }
                    Emit::TcpConnected { .. } => println!("QP side connected"),
                    _ => {}
                }
            }
        }
    };
    pump(&mut qp_side, &mut sock_side, &mut now, &mut wire, &mut from_qp, &mut from_sock);

    // QP → socket: two distinct messages; the socket sees one stream.
    for (i, msg) in
        [b"first message ".as_slice(), b"second message".as_slice()].into_iter().enumerate()
    {
        let emits = qp_side.tcp_send(now, conn, msg.to_vec(), SendToken(i as u64)).unwrap();
        absorb(true, emits, &mut wire, &mut from_qp, &mut from_sock);
    }
    pump(&mut qp_side, &mut sock_side, &mut now, &mut wire, &mut from_qp, &mut from_sock);
    let stream: Vec<u8> = from_qp.iter().flatten().copied().collect();
    println!("socket side read the byte stream: {:?}", String::from_utf8_lossy(&stream));
    println!(
        "(as §3 notes, the socket peer sees a conventional stream; message\n framing is the QP side's business)"
    );
    assert_eq!(stream, b"first message second message");
    println!(
        "\ninterop OK: {} packets crossed the wire",
        qp_side.stats().tx_packets + sock_side.stats().tx_packets
    );
}
