//! Quickstart: two QPIP nodes on a simulated Myrinet SAN exchange
//! messages through the queue-pair verbs — the paper's §3 usage model
//! end to end.
//!
//! Run with: `cargo run --example quickstart`

use qpip::world::QpipWorld;
use qpip::{CompletionKind, NicConfig, RecvWr, SendWr, ServiceType};
use qpip_netstack::types::Endpoint;

fn main() {
    // A Myrinet-like SAN (2 Gb/s, cut-through) with two hosts, each
    // carrying a LANai-9-class QPIP NIC.
    let mut world = QpipWorld::myrinet();
    let client = world.add_node(NicConfig::paper_default());
    let server = world.add_node(NicConfig::paper_default());
    println!("client = {}, server = {}", world.addr(client), world.addr(server));

    // Server: create CQ + QP, post receive buffers, monitor a TCP port.
    let scq = world.create_cq(server);
    let sqp = world.create_qp(server, ServiceType::ReliableTcp, scq, scq).unwrap();
    for i in 0..8 {
        world.post_recv(server, sqp, RecvWr { wr_id: i, capacity: 16 * 1024 }).unwrap();
    }
    world.tcp_listen(server, 5000, sqp).unwrap();

    // Client: create CQ + QP, post receives for replies, connect. The
    // rendezvous is ordinary TCP SYN / SYN-ACK / ACK handled entirely in
    // the NICs (§3) — the host only learns that the connection is up.
    let ccq = world.create_cq(client);
    let cqp = world.create_qp(client, ServiceType::ReliableTcp, ccq, ccq).unwrap();
    for i in 0..8 {
        world.post_recv(client, cqp, RecvWr { wr_id: 100 + i, capacity: 16 * 1024 }).unwrap();
    }
    let dst = Endpoint::new(world.addr(server), 5000);
    world.tcp_connect(client, cqp, 4000, dst).unwrap();
    let c = world.wait(client, ccq);
    assert_eq!(c.kind, CompletionKind::ConnectionEstablished);
    let c = world.wait(server, scq);
    assert_eq!(c.kind, CompletionKind::ConnectionEstablished);
    println!("connected at t = {}", world.now());

    // One request-response round trip, timed at the application.
    let t0 = world.app_time(client);
    world
        .post_send(
            client,
            cqp,
            SendWr { wr_id: 1, payload: b"ping from the queue pair".to_vec(), dst: None },
        )
        .unwrap();
    let c = world.wait_matching(server, scq, |c| matches!(c.kind, CompletionKind::Recv { .. }));
    if let CompletionKind::Recv { data, .. } = &c.kind {
        println!("server received {} bytes: {:?}", data.len(), String::from_utf8_lossy(data));
    }
    world
        .post_send(server, sqp, SendWr { wr_id: 2, payload: b"pong".to_vec(), dst: None })
        .unwrap();
    let c = world.wait_matching(client, ccq, |c| matches!(c.kind, CompletionKind::Recv { .. }));
    if let CompletionKind::Recv { data, .. } = &c.kind {
        println!("client received {} bytes: {:?}", data.len(), String::from_utf8_lossy(data));
    }
    let rtt = world.app_time(client).duration_since(t0);
    println!("application round trip: {rtt}");

    // The headline property (Table 1): the host did almost nothing —
    // the protocol stack ran in the NIC.
    let cpu = world.cpu(client);
    println!(
        "client host cycles: {} total ({} verb cycles); NIC did the TCP/IP",
        cpu.total_cycles(),
        cpu.cycles(qpip_host::WorkClass::Verbs),
    );
}
