//! Network Block Device demo — the storage application of §4.2.3
//! (Figures 5–7) at demo scale: a sequential write + sync and a
//! sequential read over socket NBD and QPIP NBD.
//!
//! Run with: `cargo run --release --example nbd_storage`

use qpip_nbd::socket_impl::{self, Transport};
use qpip_nbd::{qpip_impl, NbdConfig, NbdResult};

fn show(name: &str, r: &NbdResult) {
    println!(
        "{name:<18} write {:>6.1} MB/s ({:>6.1} MB/CPU·s)   read {:>6.1} MB/s ({:>6.1} MB/CPU·s)",
        r.write.mbytes_per_sec,
        r.write.mb_per_cpu_sec,
        r.read.mbytes_per_sec,
        r.read.mb_per_cpu_sec
    );
}

fn main() {
    let cfg = NbdConfig { total_bytes: 16 * 1024 * 1024, block: 64 * 1024, queue_depth: 4 };
    println!(
        "NBD benchmark: {} MB sequential write (+sync) then read, 64 KB blocks\n",
        cfg.total_bytes / (1024 * 1024)
    );
    show("NBD over GigE", &socket_impl::run(Transport::GigE, cfg));
    show("NBD over GM", &socket_impl::run(Transport::GmMyrinet, cfg));
    let q = qpip_impl::run(cfg);
    show("NBD over QPIP", &q);

    println!("\nAs in Figure 7: moving the transport into the NIC leaves the");
    println!("client CPU to the filesystem — throughput and MB-per-CPU-second");
    println!("both improve substantially.");
    println!(
        "(QPIP client spent {:.0}% of the read phase on ext2/block-layer work,\n paper reports ≥26% for all three implementations)",
        q.read.fs_fraction * 100.0
    );
}
