//! Umbrella crate for the QPIP reproduction workspace.
//!
//! Re-exports the workspace crates under one roof so that examples and
//! integration tests can `use qpip_repro::...`. See the individual crates
//! for the real functionality:
//!
//! * [`qpip`] — the Queue Pair IP verbs library (the paper's contribution)
//! * [`qpip_sim`] — discrete-event simulation kernel
//! * [`qpip_wire`] — IPv6/TCP/UDP wire formats
//! * [`qpip_netstack`] — protocol engines (TCP/UDP/IPv6)
//! * [`qpip_fabric`] — Myrinet/Ethernet fabric models
//! * [`qpip_nic`] — programmable NIC model + QPIP firmware
//! * [`qpip_host`] — host CPU/OS model + socket baseline
//! * [`qpip_nbd`] — Network Block Device application

pub use qpip;
pub use qpip_fabric;
pub use qpip_host;
pub use qpip_nbd;
pub use qpip_netstack;
pub use qpip_nic;
pub use qpip_sim;
pub use qpip_wire;
