//! QPIP ↔ socket interoperability on one fabric (§3), with both cost
//! models live: "Communication can occur between QPIP applications or
//! QPIP and traditional (socket) systems."

use qpip::mixed::MixedWorld;
use qpip::{CompletionKind, NicConfig, RecvWr, SendWr, ServiceType};
use qpip_fabric::FabricConfig;
use qpip_host::stack::StackConfig;
use qpip_netstack::types::Endpoint;

/// A Myrinet fabric carrying both node kinds at the GM MTU.
fn world() -> MixedWorld {
    MixedWorld::new(FabricConfig::myrinet_gm())
}

fn gm_host() -> StackConfig {
    StackConfig::gm_myrinet()
}

fn qpip_nic() -> NicConfig {
    NicConfig { mtu: 9000, ..NicConfig::paper_default() }
}

#[test]
fn socket_client_connects_to_qpip_server() {
    let mut w = world();
    let q = w.add_qpip_node(qpip_nic());
    let h = w.add_host_node(gm_host());

    // QPIP server: QP + receive buffers + monitored port
    let cq = w.create_cq(q);
    let qp = w.create_qp(q, ServiceType::ReliableTcp, cq, cq).unwrap();
    for i in 0..8 {
        w.post_recv(q, qp, RecvWr { wr_id: i, capacity: 8 * 1024 }).unwrap();
    }
    w.tcp_listen(q, 5000, qp).unwrap();

    // socket client: an entirely conventional connect + write
    let cs = w.tcp_socket(h);
    let remote = Endpoint::new(w.addr(q), 5000);
    w.connect_blocking(h, cs, 4000, remote).unwrap();
    let c = w.wait_matching(q, cq, |c| c.kind == CompletionKind::ConnectionEstablished);
    assert_eq!(c.status, qpip::CompletionStatus::Success);

    w.send_blocking(h, cs, b"from a plain socket".to_vec()).unwrap();
    let c = w.wait_matching(q, cq, |c| matches!(c.kind, CompletionKind::Recv { .. }));
    let CompletionKind::Recv { data, .. } = c.kind else { unreachable!() };
    // the socket side streamed; here the write was small enough to
    // arrive as one unit in one posted buffer
    assert_eq!(data, b"from a plain socket");
}

#[test]
fn qpip_client_talks_to_socket_server_and_back() {
    let mut w = world();
    let h = w.add_host_node(gm_host());
    let q = w.add_qpip_node(qpip_nic());

    let ls = w.tcp_socket(h);
    w.listen(h, ls, 80).unwrap();

    let cq = w.create_cq(q);
    let qp = w.create_qp(q, ServiceType::ReliableTcp, cq, cq).unwrap();
    for i in 0..8 {
        w.post_recv(q, qp, RecvWr { wr_id: i, capacity: 8 * 1024 }).unwrap();
    }
    let remote = Endpoint::new(w.addr(h), 80);
    w.tcp_connect(q, qp, 7000, remote).unwrap();
    let ss = w.accept_blocking(h, ls);
    w.wait_matching(q, cq, |c| c.kind == CompletionKind::ConnectionEstablished);

    // QP → socket: two messages become one byte stream at the server
    w.post_send(q, qp, SendWr { wr_id: 1, payload: b"hello ".to_vec(), dst: None }).unwrap();
    w.post_send(q, qp, SendWr { wr_id: 2, payload: b"socket".to_vec(), dst: None }).unwrap();
    let got = w.recv_exact(h, ss, 12);
    assert_eq!(got, b"hello socket", "the remote end sees a conventional stream (§3)");

    // socket → QP: the reply surfaces as a receive completion
    w.send_blocking(h, ss, b"and hello queue pair".to_vec()).unwrap();
    let c = w.wait_matching(q, cq, |c| matches!(c.kind, CompletionKind::Recv { .. }));
    let CompletionKind::Recv { data, .. } = c.kind else { unreachable!() };
    assert_eq!(data, b"and hello queue pair");
}

#[test]
fn cost_models_differ_across_the_same_wire() {
    let mut w = world();
    let h = w.add_host_node(gm_host());
    let q = w.add_qpip_node(qpip_nic());
    let ls = w.tcp_socket(h);
    w.listen(h, ls, 80).unwrap();
    let cq = w.create_cq(q);
    let qp = w.create_qp(q, ServiceType::ReliableTcp, cq, cq).unwrap();
    for i in 0..32 {
        w.post_recv(q, qp, RecvWr { wr_id: i, capacity: 8 * 1024 }).unwrap();
    }
    w.tcp_connect(q, qp, 7000, Endpoint::new(w.addr(h), 80)).unwrap();
    let ss = w.accept_blocking(h, ls);
    w.wait_matching(q, cq, |c| c.kind == CompletionKind::ConnectionEstablished);

    // socket host streams 128 KB to the QPIP node (inside the posted
    // 32-buffer window: a single blocking write cannot deadlock against
    // the receiver's buffer posting)
    let total = 128 * 1024;
    w.send_blocking(h, ss, vec![0x7e; total]).unwrap();
    let mut got = 0usize;
    while got < total {
        let c = w.wait_matching(q, cq, |c| matches!(c.kind, CompletionKind::Recv { .. }));
        let CompletionKind::Recv { data, .. } = c.kind else { unreachable!() };
        assert!(data.iter().all(|&b| b == 0x7e));
        got += data.len();
    }
    assert_eq!(got, total);
    // the socket host burned protocol + interrupt + copy cycles…
    // (read via the public API of the node's stack through a fresh scope)
    // while the QPIP node's host did verbs only.
    // MixedWorld keeps ledgers internal; the observable contrast is that
    // the whole transfer arrived intact with per-message completions on
    // one side and one write call on the other.
}
