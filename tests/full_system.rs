//! Whole-system integration tests: QPIP node pairs over the simulated
//! SAN, exercised through the public verbs API exactly as the examples
//! and experiment harnesses use it.

use qpip::world::QpipWorld;
use qpip::{
    ChecksumMode, CompletionKind, CompletionStatus, NicConfig, NodeIdx, RecvWr, SendWr, ServiceType,
};
use qpip_fabric::FaultPlan;
use qpip_netstack::types::Endpoint;

struct Pair {
    w: QpipWorld,
    a: NodeIdx,
    b: NodeIdx,
    qa: qpip::QpId,
    qb: qpip::QpId,
    cqa: qpip::CqId,
    cqb: qpip::CqId,
}

fn connected(cfg: NicConfig) -> Pair {
    let mut w = QpipWorld::myrinet();
    let a = w.add_node(cfg.clone());
    let b = w.add_node(cfg);
    let cqa = w.create_cq(a);
    let cqb = w.create_cq(b);
    let qa = w.create_qp(a, ServiceType::ReliableTcp, cqa, cqa).unwrap();
    let qb = w.create_qp(b, ServiceType::ReliableTcp, cqb, cqb).unwrap();
    for i in 0..16 {
        w.post_recv(a, qa, RecvWr { wr_id: i, capacity: 16 * 1024 }).unwrap();
        w.post_recv(b, qb, RecvWr { wr_id: i, capacity: 16 * 1024 }).unwrap();
    }
    w.tcp_listen(b, 5000, qb).unwrap();
    let dst = Endpoint::new(w.addr(b), 5000);
    w.tcp_connect(a, qa, 4000, dst).unwrap();
    w.wait_matching(a, cqa, |c| c.kind == CompletionKind::ConnectionEstablished);
    w.wait_matching(b, cqb, |c| c.kind == CompletionKind::ConnectionEstablished);
    Pair { w, a, b, qa, qb, cqa, cqb }
}

#[test]
fn bidirectional_traffic_on_one_queue_pair() {
    let mut p = connected(NicConfig::paper_default());
    for round in 0..10u64 {
        p.w.post_recv(p.b, p.qb, RecvWr { wr_id: 100 + round, capacity: 16 * 1024 }).unwrap();
        p.w.post_recv(p.a, p.qa, RecvWr { wr_id: 100 + round, capacity: 16 * 1024 }).unwrap();
        p.w.post_send(p.a, p.qa, SendWr { wr_id: round, payload: vec![1; 2048], dst: None })
            .unwrap();
        let c = p.w.wait_matching(p.b, p.cqb, |c| matches!(c.kind, CompletionKind::Recv { .. }));
        assert!(matches!(c.kind, CompletionKind::Recv { ref data, .. } if data.len() == 2048));
        p.w.post_send(p.b, p.qb, SendWr { wr_id: round, payload: vec![2; 1024], dst: None })
            .unwrap();
        let c = p.w.wait_matching(p.a, p.cqa, |c| matches!(c.kind, CompletionKind::Recv { .. }));
        assert!(matches!(c.kind, CompletionKind::Recv { ref data, .. } if data.len() == 1024));
    }
    assert_eq!(p.w.nic(p.a).retransmissions(), 0);
    assert_eq!(p.w.nic(p.b).retransmissions(), 0);
}

#[test]
fn data_integrity_end_to_end_across_the_san() {
    let mut p = connected(NicConfig::paper_default());
    // distinct per-message patterns survive DMA, wire, checksum, delivery
    for i in 0..20u64 {
        let len = 1 + (i as usize * 761) % 16_000;
        let payload: Vec<u8> = (0..len).map(|j| ((i as usize * 31 + j * 7) % 256) as u8).collect();
        p.w.post_recv(p.b, p.qb, RecvWr { wr_id: 200 + i, capacity: 16 * 1024 }).unwrap();
        p.w.post_send(p.a, p.qa, SendWr { wr_id: i, payload: payload.clone(), dst: None }).unwrap();
        let c = p.w.wait_matching(p.b, p.cqb, |c| matches!(c.kind, CompletionKind::Recv { .. }));
        match c.kind {
            CompletionKind::Recv { data, .. } => assert_eq!(data, payload, "message {i}"),
            _ => unreachable!(),
        }
    }
}

#[test]
fn firmware_checksum_configuration_works_end_to_end() {
    let mut p = connected(NicConfig::firmware_checksum());
    p.w.post_send(p.a, p.qa, SendWr { wr_id: 1, payload: vec![9; 8192], dst: None }).unwrap();
    let c = p.w.wait_matching(p.b, p.cqb, |c| matches!(c.kind, CompletionKind::Recv { .. }));
    assert!(matches!(c.kind, CompletionKind::Recv { ref data, .. } if data.len() == 8192));
}

#[test]
fn heavy_loss_does_not_break_reliability_or_ordering() {
    let mut p = connected(NicConfig::paper_default());
    p.w.set_fault_plan(FaultPlan::DropRandom { permille: 100, seed: 99 }); // 10%
    let mut received = Vec::new();
    for i in 0..40u64 {
        p.w.post_recv(p.b, p.qb, RecvWr { wr_id: 300 + i, capacity: 16 * 1024 }).unwrap();
        p.w.post_send(p.a, p.qa, SendWr { wr_id: i, payload: vec![i as u8; 512], dst: None })
            .unwrap();
        let c = p.w.wait_matching(p.b, p.cqb, |c| matches!(c.kind, CompletionKind::Recv { .. }));
        if let CompletionKind::Recv { data, .. } = c.kind {
            received.push(data[0]);
        }
    }
    assert_eq!(received, (0..40).map(|i| i as u8).collect::<Vec<_>>(), "in order");
    assert!(p.w.fabric().injected_drops() > 0, "loss actually happened");
    assert!(p.w.nic(p.a).retransmissions() > 0);
}

#[test]
fn all_completions_report_success_statuses() {
    let mut p = connected(NicConfig::paper_default());
    for i in 0..5u64 {
        p.w.post_recv(p.b, p.qb, RecvWr { wr_id: 400 + i, capacity: 16 * 1024 }).unwrap();
        p.w.post_send(p.a, p.qa, SendWr { wr_id: i, payload: vec![0; 100], dst: None }).unwrap();
        let c = p.w.wait_matching(p.b, p.cqb, |c| matches!(c.kind, CompletionKind::Recv { .. }));
        assert_eq!(c.status, CompletionStatus::Success);
        let c = p.w.wait_matching(p.a, p.cqa, |c| c.kind == CompletionKind::Send);
        assert_eq!(c.status, CompletionStatus::Success);
        assert_eq!(c.wr_id, i);
    }
}

#[test]
fn udp_qps_are_unreliable_but_preserve_datagram_boundaries() {
    let mut w = QpipWorld::myrinet();
    let a = w.add_node(NicConfig::paper_default());
    let b = w.add_node(NicConfig::paper_default());
    let cqa = w.create_cq(a);
    let cqb = w.create_cq(b);
    let qa = w.create_qp(a, ServiceType::UnreliableUdp, cqa, cqa).unwrap();
    let qb = w.create_qp(b, ServiceType::UnreliableUdp, cqb, cqb).unwrap();
    w.udp_bind(a, qa, 9000).unwrap();
    w.udp_bind(b, qb, 9001).unwrap();
    let to_b = Endpoint::new(w.addr(b), 9001);
    // only 2 receive WRs posted but 4 datagrams sent: 2 must be dropped
    for i in 0..2 {
        w.post_recv(b, qb, RecvWr { wr_id: i, capacity: 4096 }).unwrap();
    }
    for i in 0..4u64 {
        w.post_send(
            a,
            qa,
            SendWr { wr_id: i, payload: vec![i as u8; 100 + i as usize], dst: Some(to_b) },
        )
        .unwrap();
        w.wait_matching(a, cqa, |c| c.kind == CompletionKind::Send);
    }
    w.run_until_idle();
    let mut sizes = Vec::new();
    while let Some(c) = w.try_wait(b, cqb) {
        if let CompletionKind::Recv { data, .. } = c.kind {
            sizes.push(data.len());
        }
    }
    assert_eq!(sizes, vec![100, 101], "first two consumed WRs, rest dropped");
    assert_eq!(w.nic(b).stats().udp_no_wr_drops, 2);
}

#[test]
fn three_nodes_share_the_fabric() {
    let mut w = QpipWorld::myrinet();
    let hub = w.add_node(NicConfig::paper_default());
    let n1 = w.add_node(NicConfig::paper_default());
    let n2 = w.add_node(NicConfig::paper_default());
    let cq_hub = w.create_cq(hub);
    // two QPs on the hub, one per peer, both bound to ONE CQ — "the
    // binding of multiple queues to a CQ permits applications to group
    // related QPs into a single monitoring point" (§2.1)
    let q_h1 = w.create_qp(hub, ServiceType::ReliableTcp, cq_hub, cq_hub).unwrap();
    let q_h2 = w.create_qp(hub, ServiceType::ReliableTcp, cq_hub, cq_hub).unwrap();
    for i in 0..8 {
        w.post_recv(hub, q_h1, RecvWr { wr_id: i, capacity: 8192 }).unwrap();
        w.post_recv(hub, q_h2, RecvWr { wr_id: 50 + i, capacity: 8192 }).unwrap();
    }
    w.tcp_listen(hub, 5000, q_h1).unwrap();
    w.tcp_listen(hub, 5000, q_h2).unwrap(); // second idle QP in the pool
    let dst = Endpoint::new(w.addr(hub), 5000);
    for (n, port) in [(n1, 4001u16), (n2, 4002u16)] {
        let cq = w.create_cq(n);
        let q = w.create_qp(n, ServiceType::ReliableTcp, cq, cq).unwrap();
        w.post_recv(n, q, RecvWr { wr_id: 1, capacity: 8192 }).unwrap();
        w.tcp_connect(n, q, port, dst).unwrap();
        w.wait_matching(n, cq, |c| c.kind == CompletionKind::ConnectionEstablished);
        w.post_send(n, q, SendWr { wr_id: 9, payload: vec![port as u8; 256], dst: None }).unwrap();
    }
    // the hub drains both peers' messages from the single CQ
    let mut got = Vec::new();
    for _ in 0..20 {
        let c = w.wait(hub, cq_hub);
        if let CompletionKind::Recv { data, .. } = c.kind {
            got.push(data[0]);
            if got.len() == 2 {
                break;
            }
        }
    }
    got.sort_unstable();
    assert_eq!(got, vec![4001u16 as u8, 4002u16 as u8]);
}

#[test]
fn deterministic_replay_bit_for_bit() {
    let run = || {
        let mut p = connected(NicConfig::paper_default());
        for i in 0..8u64 {
            p.w.post_recv(p.b, p.qb, RecvWr { wr_id: 500 + i, capacity: 16 * 1024 }).unwrap();
            p.w.post_send(p.a, p.qa, SendWr { wr_id: i, payload: vec![3; 1000], dst: None })
                .unwrap();
            p.w.wait_matching(p.b, p.cqb, |c| matches!(c.kind, CompletionKind::Recv { .. }));
        }
        (p.w.now(), p.w.fabric().stats().delivered, p.w.cpu(p.a).total_cycles())
    };
    assert_eq!(run(), run(), "simulation is fully deterministic");
}

#[test]
fn checksum_modes_interoperate() {
    // one node with hardware checksum, one with firmware: the wire
    // format is identical, only the cycle cost differs
    let mut w = QpipWorld::myrinet();
    let a = w.add_node(NicConfig::paper_default());
    let b =
        w.add_node(NicConfig { checksum: ChecksumMode::Firmware, ..NicConfig::paper_default() });
    let cqa = w.create_cq(a);
    let cqb = w.create_cq(b);
    let qa = w.create_qp(a, ServiceType::ReliableTcp, cqa, cqa).unwrap();
    let qb = w.create_qp(b, ServiceType::ReliableTcp, cqb, cqb).unwrap();
    for i in 0..4 {
        w.post_recv(b, qb, RecvWr { wr_id: i, capacity: 16 * 1024 }).unwrap();
    }
    w.tcp_listen(b, 5000, qb).unwrap();
    let dst = Endpoint::new(w.addr(b), 5000);
    w.tcp_connect(a, qa, 4000, dst).unwrap();
    w.wait_matching(a, cqa, |c| c.kind == CompletionKind::ConnectionEstablished);
    w.post_send(a, qa, SendWr { wr_id: 1, payload: vec![0xee; 4000], dst: None }).unwrap();
    let c = w.wait_matching(b, cqb, |c| matches!(c.kind, CompletionKind::Recv { .. }));
    assert!(matches!(c.kind, CompletionKind::Recv { ref data, .. } if data.len() == 4000));
}

#[test]
fn multi_switch_san_adds_hop_latency_but_works_identically() {
    // same workload on a 1-switch and a 4-switch SAN (endpoints at the
    // chain's far ends): everything still delivers; RTT grows by the
    // extra cut-through hop latency only
    let rtt_of = |switches: usize| {
        let mut w =
            if switches == 1 { QpipWorld::myrinet() } else { QpipWorld::myrinet_chain(switches) };
        let a = w.add_node_at(NicConfig::paper_default(), 0);
        let b = w.add_node_at(NicConfig::paper_default(), switches - 1);
        let cqa = w.create_cq(a);
        let cqb = w.create_cq(b);
        let qa = w.create_qp(a, ServiceType::ReliableTcp, cqa, cqa).unwrap();
        let qb = w.create_qp(b, ServiceType::ReliableTcp, cqb, cqb).unwrap();
        for i in 0..8 {
            w.post_recv(a, qa, RecvWr { wr_id: i, capacity: 16 * 1024 }).unwrap();
            w.post_recv(b, qb, RecvWr { wr_id: i, capacity: 16 * 1024 }).unwrap();
        }
        w.tcp_listen(b, 5000, qb).unwrap();
        let dst = Endpoint::new(w.addr(b), 5000);
        w.tcp_connect(a, qa, 4000, dst).unwrap();
        w.wait_matching(a, cqa, |c| c.kind == CompletionKind::ConnectionEstablished);
        w.wait_matching(b, cqb, |c| c.kind == CompletionKind::ConnectionEstablished);
        let t0 = w.app_time(a);
        w.post_send(a, qa, SendWr { wr_id: 1, payload: vec![1], dst: None }).unwrap();
        w.wait_matching(b, cqb, |c| matches!(c.kind, CompletionKind::Recv { .. }));
        w.post_send(b, qb, SendWr { wr_id: 2, payload: vec![1], dst: None }).unwrap();
        w.wait_matching(a, cqa, |c| matches!(c.kind, CompletionKind::Recv { .. }));
        w.app_time(a).duration_since(t0).as_micros_f64()
    };
    let one = rtt_of(1);
    let four = rtt_of(4);
    assert!(four > one, "{four} vs {one}");
    // 3 extra hops each way at 0.4 µs per hop = +2.4 µs RTT; allow slack
    let delta = four - one;
    assert!((1.5..5.0).contains(&delta), "hop latency delta {delta} µs");
}

#[test]
fn reset_flushes_in_flight_send_wrs_with_connection_error() {
    // sender's data never arrives (dropped); the peer's RST (from a
    // local abort we provoke via protection-error-free path: use fabric
    // loss + retry exhaustion would be slow, so abort from the peer by
    // letting the peer's NIC answer a bad-rkey RDMA — instead simplest:
    // drop all data and watch retry exhaustion flush the WR)
    let mut p = connected(NicConfig::paper_default());
    // every subsequent packet is lost: retries exhaust and the conn resets
    p.w.set_fault_plan(FaultPlan::DropEveryNth(1));
    p.w.post_send(p.a, p.qa, SendWr { wr_id: 77, payload: vec![1; 256], dst: None }).unwrap();
    // drive timers until the reset completions land
    let mut flushed = None;
    let mut disconnected = false;
    for _ in 0..200 {
        let Some(c) = p.w.try_wait(p.a, p.cqa) else {
            if !p.w.step() {
                break;
            }
            continue;
        };
        match c.kind {
            CompletionKind::Send => {
                assert_eq!(c.status, CompletionStatus::ConnectionError);
                assert_eq!(c.wr_id, 77);
                flushed = Some(c);
            }
            CompletionKind::PeerDisconnected => disconnected = true,
            _ => {}
        }
        if flushed.is_some() && disconnected {
            break;
        }
    }
    assert!(disconnected, "reset surfaced");
    assert!(flushed.is_some(), "in-flight WR flushed with ConnectionError");
}
