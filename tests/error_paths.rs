//! Error paths the paper's API sketch leaves implicit: what happens
//! when ports collide, when handles are stale, and when a reaped
//! connection's slot is reused. Covered across all three worlds —
//! QPIP, baseline sockets, and mixed — plus the engine-level
//! generation check that makes stale [`ConnId`]s safe to hold.

use std::net::Ipv6Addr;

use qpip::baseline::SocketWorld;
use qpip::mixed::MixedWorld;
use qpip::world::QpipWorld;
use qpip::{CqId, NicConfig, NicError, QpId, RecvWr, SendWr, ServiceType};
use qpip_fabric::FabricConfig;
use qpip_host::stack::StackConfig;
use qpip_host::SockError;
use qpip_netstack::engine::{Engine, EngineError};
use qpip_netstack::types::{Endpoint, NetConfig, SendToken};

// ----- QpipWorld ---------------------------------------------------------

#[test]
fn qpip_udp_bind_rejects_port_collisions_and_wrong_service() {
    let mut w = QpipWorld::myrinet();
    let n = w.add_node(NicConfig::paper_default());
    let cq = w.create_cq(n);
    let qp1 = w.create_qp(n, ServiceType::UnreliableUdp, cq, cq).unwrap();
    let qp2 = w.create_qp(n, ServiceType::UnreliableUdp, cq, cq).unwrap();
    let tcp = w.create_qp(n, ServiceType::ReliableTcp, cq, cq).unwrap();

    w.udp_bind(n, qp1, 9000).unwrap();
    // same port again: the engine owns the port namespace and says no
    match w.udp_bind(n, qp2, 9000) {
        Err(NicError::Engine(EngineError::PortInUse(9000))) => {}
        other => panic!("expected PortInUse(9000), got {other:?}"),
    }
    // the failed bind must not have poisoned qp2: a free port still works
    w.udp_bind(n, qp2, 9001).unwrap();
    // service mismatch is a verbs-level error, not an engine error
    assert!(matches!(w.udp_bind(n, tcp, 9002), Err(NicError::InvalidState(_))));
    assert!(matches!(w.tcp_listen(n, 5000, qp1), Err(NicError::InvalidState(_))));
}

#[test]
fn qpip_tcp_listen_collision_joins_the_accept_pool() {
    // §3: an incoming connection is mated to an idle QP from the pool —
    // so a second listen on the same port is not an error, it deepens
    // the pool. This test pins that deliberate asymmetry with udp_bind.
    let mut w = QpipWorld::myrinet();
    let n = w.add_node(NicConfig::paper_default());
    let cq = w.create_cq(n);
    let qp1 = w.create_qp(n, ServiceType::ReliableTcp, cq, cq).unwrap();
    let qp2 = w.create_qp(n, ServiceType::ReliableTcp, cq, cq).unwrap();
    w.tcp_listen(n, 5000, qp1).unwrap();
    w.tcp_listen(n, 5000, qp2).unwrap();
}

#[test]
fn qpip_stale_qp_and_cq_handles_are_rejected() {
    let mut w = QpipWorld::myrinet();
    let a = w.add_node(NicConfig::paper_default());
    let b = w.add_node(NicConfig::paper_default());
    let cq_a = w.create_cq(a);
    let qp_a = w.create_qp(a, ServiceType::ReliableTcp, cq_a, cq_a).unwrap();

    // a QP handle is scoped to its NIC: node b has never created one,
    // so node a's perfectly valid handle is garbage over there
    assert!(matches!(
        w.post_recv(b, qp_a, RecvWr { wr_id: 1, capacity: 1024 }),
        Err(NicError::UnknownQp(_))
    ));
    // never-issued handles fail on every verb that takes a QP
    let bogus = QpId(999);
    assert!(matches!(
        w.post_send(a, bogus, SendWr { wr_id: 1, payload: vec![0], dst: None }),
        Err(NicError::UnknownQp(_))
    ));
    assert!(matches!(w.udp_bind(a, bogus, 9000), Err(NicError::UnknownQp(_))));
    assert!(matches!(w.tcp_listen(a, 5000, bogus), Err(NicError::UnknownQp(_))));
    // CQ handles are issued from 1; 0 and beyond-the-counter are both stale
    assert!(matches!(
        w.create_qp(a, ServiceType::ReliableTcp, CqId(0), cq_a),
        Err(NicError::UnknownCq(CqId(0)))
    ));
    assert!(matches!(
        w.create_qp(a, ServiceType::ReliableTcp, cq_a, CqId(999)),
        Err(NicError::UnknownCq(CqId(999)))
    ));
}

// ----- SocketWorld (baseline) --------------------------------------------

#[test]
fn socket_world_rejects_port_collisions_and_wrong_kind() {
    let mut w = SocketWorld::gige();
    let n = w.add_node(StackConfig::gige());
    let u1 = w.udp_socket(n);
    let u2 = w.udp_socket(n);
    let t1 = w.tcp_socket(n);
    let t2 = w.tcp_socket(n);

    w.udp_bind(n, u1, 9000).unwrap();
    assert!(matches!(
        w.udp_bind(n, u2, 9000),
        Err(SockError::Engine(EngineError::PortInUse(9000)))
    ));
    w.listen(n, t1, 80).unwrap();
    // the host stack has no accept pool: a second listener is an error
    assert!(matches!(w.listen(n, t2, 80), Err(SockError::Engine(EngineError::PortInUse(80)))));
    // kind mismatches are caught before the engine sees them
    assert!(matches!(w.udp_bind(n, t2, 9001), Err(SockError::InvalidState(_))));
    assert!(matches!(w.listen(n, u2, 81), Err(SockError::InvalidState(_))));
}

#[test]
fn socket_world_rejects_stale_and_unbound_handles() {
    let mut w = SocketWorld::gige();
    let n = w.add_node(StackConfig::gige());
    let bogus = qpip_host::stack::SockId(999);
    assert!(matches!(w.udp_bind(n, bogus, 9000), Err(SockError::UnknownSock(_))));
    assert!(matches!(w.listen(n, bogus, 80), Err(SockError::UnknownSock(_))));
    assert!(matches!(w.close(n, bogus), Err(SockError::UnknownSock(_))));
    // operations that need a bound/connected socket say so
    let u = w.udp_socket(n);
    let dst = Endpoint::new(w.addr(n), 9000);
    assert!(matches!(w.udp_send(n, u, dst, b"x"), Err(SockError::InvalidState(_))));
    let t = w.tcp_socket(n);
    assert!(matches!(w.close(n, t), Err(SockError::InvalidState(_))));
}

// ----- MixedWorld --------------------------------------------------------

#[test]
fn mixed_world_rejects_bad_handles_on_both_sides() {
    let mut w = MixedWorld::new(FabricConfig::myrinet_gm());
    let q = w.add_qpip_node(NicConfig { mtu: 9000, ..NicConfig::paper_default() });
    let h = w.add_host_node(StackConfig::gm_myrinet());

    // verbs side: stale QP and CQ handles
    let cq = w.create_cq(q);
    assert!(matches!(
        w.post_send(q, QpId(999), SendWr { wr_id: 1, payload: vec![0], dst: None }),
        Err(NicError::UnknownQp(_))
    ));
    assert!(matches!(
        w.create_qp(q, ServiceType::ReliableTcp, cq, CqId(999)),
        Err(NicError::UnknownCq(_))
    ));

    // socket side: port collision and stale handle, same stack as the
    // pure baseline world
    let s1 = w.tcp_socket(h);
    let s2 = w.tcp_socket(h);
    w.listen(h, s1, 80).unwrap();
    assert!(matches!(w.listen(h, s2, 80), Err(SockError::Engine(EngineError::PortInUse(80)))));
    assert!(matches!(
        w.listen(h, qpip_host::stack::SockId(999), 81),
        Err(SockError::UnknownSock(_))
    ));
}

// ----- ConnId generation check -------------------------------------------

/// The slab behind the engine's connection table reuses slots; the
/// generation bits in [`ConnId`] are what keep a handle from a reaped
/// connection from aliasing its successor. Abort a connection, let a
/// new one take the slot, and every verb must reject the stale id.
#[test]
fn stale_conn_id_generation_is_rejected_after_slot_reuse() {
    let mut eng = Engine::new(NetConfig::qpip(9000), Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, 1));
    let now = qpip_sim::time::SimTime::ZERO;
    let remote = Endpoint::new(Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, 2), 5000);

    let (stale, _syn) = eng.tcp_connect(now, 4000, remote);
    eng.tcp_abort(now, stale).unwrap();
    let (fresh, _syn) = eng.tcp_connect(now, 4001, remote);

    // the successor reuses the slot under a bumped generation, so the
    // two handles differ even though they name the same table entry
    let slot_bits = (1u32 << 20) - 1;
    assert_eq!(stale.0 & slot_bits, fresh.0 & slot_bits, "slot was not reused");
    assert_ne!(stale, fresh, "generation did not advance");

    // every conn-taking verb rejects the stale handle...
    assert!(matches!(
        eng.tcp_send(now, stale, vec![0], SendToken(1)),
        Err(EngineError::UnknownConn(c)) if c == stale
    ));
    assert!(matches!(eng.set_recv_space(now, stale, 4096), Err(EngineError::UnknownConn(_))));
    assert!(matches!(eng.tcp_close(now, stale), Err(EngineError::UnknownConn(_))));
    assert!(matches!(eng.tcp_abort(now, stale), Err(EngineError::UnknownConn(_))));

    // ...while the live handle in the same slot keeps working
    eng.tcp_abort(now, fresh).unwrap();
    assert_eq!(eng.conn_count(), 0);
}
