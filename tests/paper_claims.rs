//! The paper's headline quantitative claims, encoded as integration
//! tests over the experiment harnesses (at reduced transfer sizes that
//! reach the same steady state). These are the "shape" guarantees of
//! the reproduction — who wins, by roughly what factor, and where the
//! crossovers fall.

use qpip::NicConfig;
use qpip_bench::workloads::pingpong::{
    qpip_tcp_rtt, qpip_udp_rtt, socket_tcp_rtt, socket_udp_rtt, Baseline,
};
use qpip_bench::workloads::ttcp::{qpip_ttcp, socket_ttcp};

const MB: u64 = 1024 * 1024;

/// §4.2.1 / Figure 3: "Using a firmware checksum, the QPIP latency is
/// 73µsec (UDP) and 113 µsec (TCP)."
#[test]
fn figure3_qpip_firmware_checksum_rtt_near_paper_values() {
    let udp = qpip_udp_rtt(NicConfig::firmware_checksum(), 1, 16);
    let tcp = qpip_tcp_rtt(NicConfig::firmware_checksum(), 1, 16);
    assert!((udp.mean_us - 73.0).abs() / 73.0 < 0.25, "udp {}", udp.mean_us);
    assert!((tcp.mean_us - 113.0).abs() / 113.0 < 0.25, "tcp {}", tcp.mean_us);
}

/// Figure 3's shape: QPIP (figures' hardware-checksum configuration)
/// performs equal to or better than the host baselines.
#[test]
fn figure3_qpip_latency_competitive_with_baselines() {
    let q = qpip_tcp_rtt(NicConfig::paper_default(), 1, 12).mean_us;
    let ge = socket_tcp_rtt(Baseline::GigE, 1, 12).mean_us;
    let gm = socket_tcp_rtt(Baseline::GmMyrinet, 1, 12).mean_us;
    assert!(q <= ge.max(gm) * 1.1, "qpip {q} vs gige {ge} / gm {gm}");
    let qu = qpip_udp_rtt(NicConfig::paper_default(), 1, 12).mean_us;
    let geu = socket_udp_rtt(Baseline::GigE, 1, 12).mean_us;
    assert!(qu < geu, "qpip udp {qu} vs gige udp {geu}");
}

/// §4.2.1 / Figure 4: QPIP native ≈ 75.6 MB/s at < 1 % CPU while host
/// stacks burn half to three quarters of a processor.
#[test]
fn figure4_native_throughput_and_cpu_shape() {
    let q = qpip_ttcp(NicConfig::paper_default(), 4 * MB, 16 * 1024);
    assert!((q.mbytes_per_sec - 75.6).abs() / 75.6 < 0.25, "{q:?}");
    assert!(q.sender_cpu < 0.01 && q.receiver_cpu < 0.01, "{q:?}");

    let ge = socket_ttcp(Baseline::GigE, 4 * MB, 16 * 1024);
    assert!(q.mbytes_per_sec > ge.mbytes_per_sec, "QPIP wins: {q:?} vs {ge:?}");
    assert!((0.35..=0.85).contains(&ge.sender_cpu), "{ge:?}");
}

/// §4.2.1: at the 1500-byte MTU "the limited CPU capacity of the
/// interface becomes apparent and performs … less than the gigabit
/// Ethernet"; at 9000 "QPIP outperforms the IP over Myrinet case".
#[test]
fn figure4_mtu_crossover_shape() {
    let q1500 = qpip_ttcp(NicConfig { mtu: 1500, ..NicConfig::paper_default() }, 4 * MB, 16 * 1024);
    let ge = socket_ttcp(Baseline::GigE, 4 * MB, 16 * 1024);
    assert!(q1500.mbytes_per_sec < ge.mbytes_per_sec, "{q1500:?} vs {ge:?}");

    let q9000 = qpip_ttcp(NicConfig { mtu: 9000, ..NicConfig::paper_default() }, 4 * MB, 16 * 1024);
    let gm = socket_ttcp(Baseline::GmMyrinet, 4 * MB, 16 * 1024);
    assert!(q9000.mbytes_per_sec > gm.mbytes_per_sec, "{q9000:?} vs {gm:?}");
}

/// §4.2.1: "Using a firmware based checksum on the QPIP prototype, the
/// throughput is 26.4 MB/sec" — the 5-cycle/byte loop on the 133 MHz
/// LANai is the bottleneck.
#[test]
fn figure4_firmware_checksum_throughput() {
    let q = qpip_ttcp(NicConfig::firmware_checksum(), 4 * MB, 16 * 1024);
    assert!((20.0..31.0).contains(&q.mbytes_per_sec), "{q:?}");
}

/// Table 1's ratio: host-based overhead ≈ 12× the QPIP verbs path.
#[test]
fn table1_overhead_ratio() {
    use qpip_sim::params;
    let host = params::host_tx_path_cycles_1b() + params::host_rx_path_cycles_1b();
    let qpip = params::qpip_post_cycles() * 2 + params::QPIP_POLL_HIT_CYCLES;
    let ratio = host as f64 / qpip as f64;
    assert!((10.0..14.0).contains(&ratio), "{ratio}");
}
