//! Full-system ECN/RED: §5.2 — "Inter-network protocols do not bar the
//! use of intelligence in the SAN fabric that can improve performance …
//! network-based mechanisms such as RED or ECN."
//!
//! Two QPIP senders blast one receiver through a single switch output
//! port. With RED/ECN in the switch and ECN-negotiating firmware, the
//! queue buildup is signaled by marks instead of loss: the senders'
//! windows come down, everything is delivered, and not a single segment
//! is retransmitted.

use qpip::world::QpipWorld;
use qpip::{CompletionKind, NicConfig, NodeIdx, RecvWr, SendWr, ServiceType};
use qpip_fabric::FabricConfig;
use qpip_netstack::types::Endpoint;
use qpip_sim::time::SimDuration;

struct Incast {
    w: QpipWorld,
    senders: Vec<(NodeIdx, qpip::QpId, qpip::CqId)>,
    sink: NodeIdx,
    sink_cq: qpip::CqId,
    sink_qps: Vec<qpip::QpId>,
}

/// Builds a 2-senders → 1-receiver incast over Myrinet, with optional
/// RED/ECN marking at the switch.
fn incast(ecn: bool, mark_threshold: Option<SimDuration>) -> Incast {
    let fabric = FabricConfig { ecn_mark_threshold: mark_threshold, ..FabricConfig::myrinet() };
    let mut w = QpipWorld::new(fabric);
    let nic = NicConfig { ecn, ..NicConfig::paper_default() };
    let sink = w.add_node(nic.clone());
    let s1 = w.add_node(nic.clone());
    let s2 = w.add_node(nic.clone());
    let sink_cq = w.create_cq(sink);
    let mut sink_qps = Vec::new();
    for _ in 0..2 {
        let qp = w.create_qp(sink, ServiceType::ReliableTcp, sink_cq, sink_cq).unwrap();
        for i in 0..64 {
            w.post_recv(sink, qp, RecvWr { wr_id: i, capacity: 16 * 1024 }).unwrap();
        }
        w.tcp_listen(sink, 5000, qp).unwrap();
        sink_qps.push(qp);
    }
    let dst = Endpoint::new(w.addr(sink), 5000);
    let mut senders = Vec::new();
    for (i, n) in [s1, s2].into_iter().enumerate() {
        let cq = w.create_cq(n);
        let qp = w.create_qp(n, ServiceType::ReliableTcp, cq, cq).unwrap();
        w.tcp_connect(n, qp, 4000 + i as u16, dst).unwrap();
        w.wait_matching(n, cq, |c| c.kind == CompletionKind::ConnectionEstablished);
        senders.push((n, qp, cq));
    }
    Incast { w, senders, sink, sink_cq, sink_qps }
}

/// Drives `messages` × 16 KB from each sender; returns total messages
/// delivered at the sink.
fn drive(rig: &mut Incast, messages: u64) -> u64 {
    let size = 16 * 1024 - 72;
    let mut posted = vec![0u64; rig.senders.len()];
    let mut done = vec![0u64; rig.senders.len()];
    let window = 8u64;
    let mut delivered = 0u64;
    let total = messages * rig.senders.len() as u64;
    let mut recv_seq = 1000u64;
    while delivered < total {
        for (i, (n, qp, cq)) in rig.senders.iter().enumerate() {
            while posted[i] < messages && posted[i] - done[i] < window {
                rig.w
                    .post_send(
                        *n,
                        *qp,
                        SendWr { wr_id: posted[i], payload: vec![i as u8; size], dst: None },
                    )
                    .unwrap();
                posted[i] += 1;
            }
            while let Some(c) = rig.w.try_wait(*n, *cq) {
                if c.kind == CompletionKind::Send {
                    done[i] += 1;
                }
            }
        }
        let c = rig.w.wait(rig.sink, rig.sink_cq);
        if matches!(c.kind, CompletionKind::Recv { .. }) {
            delivered += 1;
            recv_seq += 1;
            // recycle a buffer on the QP that completed
            rig.w
                .post_recv(rig.sink, c.qp, RecvWr { wr_id: recv_seq, capacity: 16 * 1024 })
                .unwrap();
            let _ = rig.sink_qps.len();
        }
    }
    delivered
}

#[test]
fn incast_with_ecn_signals_congestion_without_loss() {
    let mut rig = incast(true, Some(SimDuration::from_micros(150)));
    let delivered = drive(&mut rig, 40);
    assert_eq!(delivered, 80, "every message arrived");
    assert!(rig.w.fabric().ecn_marks() > 0, "the switch marked packets");
    let reductions: u64 = rig.senders.iter().map(|(n, _, _)| rig.w.nic(*n).ecn_reductions()).sum();
    assert!(reductions >= 1, "senders reduced their windows");
    let retx: u64 = rig.senders.iter().map(|(n, _, _)| rig.w.nic(*n).retransmissions()).sum();
    assert_eq!(retx, 0, "congestion handled without a single retransmission");
}

#[test]
fn incast_without_ecn_never_marks_or_reduces() {
    let mut rig = incast(false, Some(SimDuration::from_micros(150)));
    let delivered = drive(&mut rig, 20);
    assert_eq!(delivered, 40);
    // the switch marks only ECN-capable packets; none were ECT
    let reductions: u64 = rig.senders.iter().map(|(n, _, _)| rig.w.nic(*n).ecn_reductions()).sum();
    assert_eq!(reductions, 0);
}

#[test]
fn marking_disabled_means_no_marks_even_with_ecn_endpoints() {
    let mut rig = incast(true, None);
    let delivered = drive(&mut rig, 20);
    assert_eq!(delivered, 40);
    assert_eq!(rig.w.fabric().ecn_marks(), 0);
}
