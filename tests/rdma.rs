//! The RDMA transaction class (§2.1) end to end: remote writes and
//! reads against registered memory regions, key exchange over
//! send-receive, protection-error semantics, and one-sided operation
//! (no receive WRs consumed, no target-side completions).

use qpip::world::QpipWorld;
use qpip::{
    CompletionKind, CompletionStatus, MrKey, NicConfig, NodeIdx, RdmaReadWr, RdmaWriteWr, RecvWr,
    SendWr, ServiceType,
};
use qpip_netstack::types::Endpoint;

struct Rig {
    w: QpipWorld,
    client: NodeIdx,
    server: NodeIdx,
    qc: qpip::QpId,
    cqc: qpip::CqId,
    cqs: qpip::CqId,
    region: MrKey,
}

/// Connected RDMA-enabled pair; the server registers a 64 KB region and
/// sends its key to the client via an ordinary send-receive message —
/// the out-of-band exchange §2.1 calls for.
fn rig() -> Rig {
    let mut w = QpipWorld::myrinet();
    let client = w.add_node(NicConfig::with_rdma());
    let server = w.add_node(NicConfig::with_rdma());
    let cqc = w.create_cq(client);
    let cqs = w.create_cq(server);
    let qc = w.create_qp(client, ServiceType::ReliableTcp, cqc, cqc).unwrap();
    let qs = w.create_qp(server, ServiceType::ReliableTcp, cqs, cqs).unwrap();
    for i in 0..8 {
        w.post_recv(client, qc, RecvWr { wr_id: i, capacity: 16 * 1024 }).unwrap();
        w.post_recv(server, qs, RecvWr { wr_id: i, capacity: 16 * 1024 }).unwrap();
    }
    w.tcp_listen(server, 5000, qs).unwrap();
    let dst = Endpoint::new(w.addr(server), 5000);
    w.tcp_connect(client, qc, 4000, dst).unwrap();
    w.wait_matching(client, cqc, |c| c.kind == CompletionKind::ConnectionEstablished);
    w.wait_matching(server, cqs, |c| c.kind == CompletionKind::ConnectionEstablished);

    // server registers memory and advertises the key in-band
    let region = w.register_mr(server, 64 * 1024);
    w.post_send(
        server,
        qs,
        SendWr { wr_id: 99, payload: region.0.to_be_bytes().to_vec(), dst: None },
    )
    .unwrap();
    let c = w.wait_matching(client, cqc, |c| matches!(c.kind, CompletionKind::Recv { .. }));
    let CompletionKind::Recv { data, .. } = c.kind else { unreachable!() };
    let key = MrKey(u32::from_be_bytes(data[..4].try_into().unwrap()));
    assert_eq!(key, region, "rkey exchanged over send-receive");
    // drain the server's completion for the advertisement send, so the
    // one-sidedness assertions below see a clean CQ
    w.wait_matching(server, cqs, |c| c.kind == CompletionKind::Send);
    Rig { w, client, server, qc, cqc, cqs, region }
}

#[test]
fn rdma_write_places_data_without_involving_the_target() {
    let mut r = rig();
    let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
    r.w.post_rdma_write(
        r.client,
        r.qc,
        RdmaWriteWr { wr_id: 1, data: payload.clone(), rkey: r.region, remote_offset: 512 },
    )
    .unwrap();
    // the WRITE completes at the initiator once acknowledged
    let c = r.w.wait_matching(r.client, r.cqc, |c| c.kind == CompletionKind::RdmaWrite);
    assert_eq!(c.wr_id, 1);
    assert_eq!(c.status, CompletionStatus::Success);
    // the data is in the server's registered memory…
    assert_eq!(r.w.mr_read(r.server, r.region, 512, 4096), payload);
    // …and the server's application saw NOTHING: no CQ entry, no WR used
    assert!(r.w.try_wait(r.server, r.cqs).is_none(), "one-sided (§2.1)");
    assert_eq!(r.w.nic(r.server).stats().rdma_writes, 1);
}

#[test]
fn rdma_read_fetches_remote_bytes() {
    let mut r = rig();
    let content: Vec<u8> = (0..8192u32).map(|i| (i % 241) as u8).collect();
    r.w.mr_write(r.server, r.region, 1024, &content);
    r.w.post_rdma_read(
        r.client,
        r.qc,
        RdmaReadWr { wr_id: 7, len: 8192, rkey: r.region, remote_offset: 1024 },
    )
    .unwrap();
    let c =
        r.w.wait_matching(r.client, r.cqc, |c| matches!(c.kind, CompletionKind::RdmaRead { .. }));
    assert_eq!(c.wr_id, 7);
    let CompletionKind::RdmaRead { data } = c.kind else { unreachable!() };
    assert_eq!(data, content);
    assert_eq!(r.w.nic(r.server).stats().rdma_reads_served, 1);
    // the server application was never involved
    assert!(r.w.try_wait(r.server, r.cqs).is_none());
}

#[test]
fn rdma_and_send_receive_interleave_on_one_qp() {
    let mut r = rig();
    r.w.post_rdma_write(
        r.client,
        r.qc,
        RdmaWriteWr { wr_id: 1, data: vec![0xaa; 256], rkey: r.region, remote_offset: 0 },
    )
    .unwrap();
    r.w.post_send(r.client, r.qc, SendWr { wr_id: 2, payload: b"notify".to_vec(), dst: None })
        .unwrap();
    // the send consumes a receive WR and surfaces at the server —
    // the usual "write data, then send a notification" idiom
    let c = r.w.wait_matching(r.server, r.cqs, |c| matches!(c.kind, CompletionKind::Recv { .. }));
    let CompletionKind::Recv { data, .. } = c.kind else { unreachable!() };
    assert_eq!(data, b"notify");
    // TCP ordering guarantees the write landed before the notification
    assert_eq!(r.w.mr_read(r.server, r.region, 0, 256), vec![0xaa; 256]);
    let c = r.w.wait_matching(r.client, r.cqc, |c| c.kind == CompletionKind::RdmaWrite);
    assert_eq!(c.wr_id, 1);
}

#[test]
fn bad_rkey_is_a_protection_error_that_kills_the_connection() {
    let mut r = rig();
    r.w.post_rdma_write(
        r.client,
        r.qc,
        RdmaWriteWr { wr_id: 1, data: vec![1; 64], rkey: MrKey(0xdead), remote_offset: 0 },
    )
    .unwrap();
    // the target tears the connection down (Infiniband protection
    // semantics); both sides observe the failure
    let c = r.w.wait_matching(r.server, r.cqs, |c| c.kind == CompletionKind::PeerDisconnected);
    assert_eq!(c.status, CompletionStatus::ConnectionError);
    assert_eq!(r.w.nic(r.server).stats().rdma_protection_errors, 1);
}

#[test]
fn out_of_bounds_write_is_rejected() {
    let mut r = rig();
    r.w.post_rdma_write(
        r.client,
        r.qc,
        RdmaWriteWr {
            wr_id: 1,
            data: vec![1; 4096],
            rkey: r.region,
            remote_offset: (64 * 1024 - 100) as u64, // runs past the region
        },
    )
    .unwrap();
    r.w.wait_matching(r.server, r.cqs, |c| c.kind == CompletionKind::PeerDisconnected);
    assert_eq!(r.w.nic(r.server).stats().rdma_protection_errors, 1);
    // nothing was written
    assert_eq!(r.w.mr_read(r.server, r.region, 64 * 1024 - 100, 100), vec![0; 100]);
}

#[test]
fn rdma_verbs_require_an_rdma_enabled_nic() {
    let mut w = QpipWorld::myrinet();
    let a = w.add_node(NicConfig::paper_default()); // no framing
    let cq = w.create_cq(a);
    let qp = w.create_qp(a, ServiceType::ReliableTcp, cq, cq).unwrap();
    let err = w
        .post_rdma_write(
            a,
            qp,
            RdmaWriteWr { wr_id: 1, data: vec![0; 8], rkey: MrKey(1), remote_offset: 0 },
        )
        .unwrap_err();
    assert!(matches!(err, qpip::NicError::InvalidState(_)));
}

#[test]
fn many_rdma_writes_pipeline() {
    let mut r = rig();
    for i in 0..16u64 {
        r.w.post_rdma_write(
            r.client,
            r.qc,
            RdmaWriteWr {
                wr_id: i,
                data: vec![i as u8; 1024],
                rkey: r.region,
                remote_offset: i * 1024,
            },
        )
        .unwrap();
    }
    let mut done = 0;
    while done < 16 {
        let c = r.w.wait(r.client, r.cqc);
        if c.kind == CompletionKind::RdmaWrite {
            done += 1;
        }
    }
    for i in 0..16usize {
        assert_eq!(
            r.w.mr_read(r.server, r.region, i * 1024, 1024),
            vec![i as u8; 1024],
            "chunk {i}"
        );
    }
}
